#include "mpisim/mpisim.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "mpisim/fiber.hpp"
#include "trace/flight.hpp"
#include "trace/trace.hpp"

namespace hpsum::mpisim {

namespace {
namespace flight = trace::flight;

/// kAuto runs one jthread per rank up to here, fibers above (docs/MPISIM.md).
constexpr int kAutoThreadLimit = 128;

/// memcpy with the zero-length case allowed: empty messages and
/// zero-count collectives hand us null/empty vector data(), which the
/// raw memcpy contract (nonnull attributes) forbids even for n == 0.
void copy_bytes(void* dst, const void* src, std::size_t n) {
  if (n > 0) std::memcpy(dst, src, n);
}

void check_user_tag(int tag) {
  if (tag < 0 || tag >= kUserTagLimit) {
    throw std::invalid_argument(
        "mpisim: user tag " + std::to_string(tag) + " outside [0, " +
        std::to_string(kUserTagLimit) +
        ") — tags at and above the limit are reserved for collectives");
  }
}

/// Per-rank execution context for the multiplexed engine: which fiber runs
/// the rank and why it is blocked. Written only by the rank's own worker
/// thread (the fiber runs on it), so the block fields need no locking; the
/// readiness predicates re-derive state from the runtime's locked
/// structures.
struct RankCtx {
  enum class Block { kNone, kRecv, kBarrier };
  int rank = -1;
  Block block = Block::kNone;
  int src = -1;
  int tag = -1;
  std::uint64_t barrier_gen = 0;
#if HPSUM_MPISIM_HAS_FIBERS
  std::unique_ptr<detail::Fiber> fiber;
#endif
  bool done = false;
};

/// Set by the worker scheduler around each fiber resume; null on plain
/// rank threads — how the blocking primitives know whether to park the OS
/// thread or yield the fiber.
thread_local RankCtx* tl_ctx = nullptr;

void fiber_yield() {
#if HPSUM_MPISIM_HAS_FIBERS
  detail::Fiber::yield();
#else
  assert(false && "fiber_yield without fiber support");
#endif
}

}  // namespace

/// Shared state for one run(): mailboxes (the "network"), the barrier, the
/// poison latch, and run statistics.
class Runtime {
 public:
  struct Message {
    int source = 0;
    int tag = 0;
    std::vector<std::byte> data;
  };

  /// Worker-pool wake channel for the multiplexed engine: a worker sleeps
  /// until its epoch moves (message for one of its ranks, barrier release,
  /// or poison).
  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t epoch = 0;
  };

  explicit Runtime(int nranks)
      : nranks_(nranks), mailboxes_(static_cast<std::size_t>(nranks)) {}

  [[nodiscard]] int size() const noexcept { return nranks_; }

  void init_workers(int count) {
    workers_ = std::vector<Worker>(static_cast<std::size_t>(count));
  }
  [[nodiscard]] Worker& worker(int w) {
    return workers_[static_cast<std::size_t>(w)];
  }

  [[nodiscard]] bool poisoned() const noexcept {
    return poisoned_.load(std::memory_order_acquire);
  }

  /// Throws RankAborted if a peer rank has failed — called on entry to
  /// every blocking primitive so no rank can hang on a dead peer.
  void abort_check() const {
    if (poisoned()) throw RankAborted();
  }

  /// Records the first failure and wakes every blocked rank: mailbox CVs,
  /// the barrier CV, and all multiplexed workers. Blocked recv/barrier
  /// calls observe the flag and throw RankAborted.
  void poison(std::exception_ptr err) {
    {
      const std::lock_guard<std::mutex> lock(err_mu_);
      if (!first_error_) first_error_ = std::move(err);
    }
    poisoned_.store(true, std::memory_order_release);
    // Lock-then-notify: taking each mutex guarantees any rank that checked
    // the flag before we set it has already entered its wait.
    for (Mailbox& box : mailboxes_) {
      { const std::lock_guard<std::mutex> lock(box.mu); }
      box.cv.notify_all();
    }
    { const std::lock_guard<std::mutex> lock(bar_mu_); }
    bar_cv_.notify_all();
    wake_all_workers();
  }

  [[nodiscard]] std::exception_ptr first_error() {
    const std::lock_guard<std::mutex> lock(err_mu_);
    return first_error_;
  }

  /// Delivers a deep-copied message into `dest`'s mailbox.
  void post(int dest, Message msg) {
    check_rank(dest);
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
    {
      const std::lock_guard<std::mutex> lock(box.mu);
      box.queue.push_back(std::move(msg));
    }
    if (workers_.empty()) {
      box.cv.notify_all();
    } else {
      wake_worker(dest % static_cast<int>(workers_.size()));
    }
  }

  /// Blocks until a message from (source, tag) is available for `dest`,
  /// removes and returns it. Throws RankAborted once the runtime is
  /// poisoned (instead of waiting for a message that will never come).
  Message take(int dest, int source, int tag) {
    check_rank(dest);
    check_rank(source);
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
    RankCtx* ctx = tl_ctx;
    if (ctx == nullptr) {
      std::unique_lock<std::mutex> lock(box.mu);
      for (;;) {
        if (poisoned()) throw RankAborted();
        if (auto msg = match(box, source, tag)) return std::move(*msg);
        box.cv.wait(lock);
      }
    }
    for (;;) {
      {
        const std::lock_guard<std::mutex> lock(box.mu);
        if (poisoned()) throw RankAborted();
        if (auto msg = match(box, source, tag)) {
          ctx->block = RankCtx::Block::kNone;
          return std::move(*msg);
        }
        // Register the wait reason while holding the mailbox lock: a post
        // landing after this scan bumps our worker's epoch, so the yield
        // below cannot miss it.
        ctx->block = RankCtx::Block::kRecv;
        ctx->src = source;
        ctx->tag = tag;
      }
      fiber_yield();
    }
  }

  /// Non-blocking take: returns the matching message if one is queued.
  /// Deliberately not poison-checked (it cannot deadlock); callers that
  /// poll in a loop must abort_check() themselves (Request::test does).
  std::optional<Message> try_take(int dest, int source, int tag) {
    check_rank(dest);
    check_rank(source);
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
    const std::lock_guard<std::mutex> lock(box.mu);
    return match(box, source, tag);
  }

  /// Generation-counter barrier (std::barrier cannot be interrupted, and
  /// the abort protocol needs to wake waiters on poison).
  void barrier_wait() {
    RankCtx* ctx = tl_ctx;
    std::unique_lock<std::mutex> lock(bar_mu_);
    if (poisoned()) throw RankAborted();
    const std::uint64_t my_gen = bar_gen_.load(std::memory_order_relaxed);
    if (++bar_arrived_ == nranks_) {
      bar_arrived_ = 0;
      bar_gen_.store(my_gen + 1, std::memory_order_release);
      lock.unlock();
      bar_cv_.notify_all();
      wake_all_workers();
      return;
    }
    if (ctx == nullptr) {
      bar_cv_.wait(lock, [&] {
        return poisoned() ||
               bar_gen_.load(std::memory_order_relaxed) != my_gen;
      });
      if (bar_gen_.load(std::memory_order_relaxed) == my_gen) {
        throw RankAborted();  // woken by poison, not release
      }
      return;
    }
    ctx->block = RankCtx::Block::kBarrier;
    ctx->barrier_gen = my_gen;
    lock.unlock();
    while (bar_gen_.load(std::memory_order_acquire) == my_gen) {
      if (poisoned()) {
        ctx->block = RankCtx::Block::kNone;
        throw RankAborted();
      }
      fiber_yield();
    }
    ctx->block = RankCtx::Block::kNone;
  }

  /// Multiplexed-engine readiness: may this rank's fiber make progress?
  [[nodiscard]] bool ready(const RankCtx& c) {
    if (poisoned()) return true;
    switch (c.block) {
      case RankCtx::Block::kNone:
        return true;
      case RankCtx::Block::kBarrier:
        return bar_gen_.load(std::memory_order_acquire) != c.barrier_gen;
      case RankCtx::Block::kRecv: {
        Mailbox& box = mailboxes_[static_cast<std::size_t>(c.rank)];
        const std::lock_guard<std::mutex> lock(box.mu);
        return std::any_of(box.queue.begin(), box.queue.end(),
                           [&](const Message& m) {
                             return m.source == c.src && m.tag == c.tag;
                           });
      }
    }
    return true;
  }

  void note_message(std::size_t bytes) {
    stat_messages_.fetch_add(1, std::memory_order_relaxed);
    stat_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void note_wire(std::size_t raw_bytes, std::size_t encoded_bytes) {
    stat_wire_raw_.fetch_add(raw_bytes, std::memory_order_relaxed);
    stat_wire_encoded_.fetch_add(encoded_bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] RunStats stats_snapshot() const {
    RunStats s;
    s.messages = stat_messages_.load(std::memory_order_relaxed);
    s.bytes_sent = stat_bytes_.load(std::memory_order_relaxed);
    s.wire_raw_bytes = stat_wire_raw_.load(std::memory_order_relaxed);
    s.wire_encoded_bytes = stat_wire_encoded_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  static std::optional<Message> match(Mailbox& box, int source, int tag) {
    const auto it = std::find_if(
        box.queue.begin(), box.queue.end(), [&](const Message& m) {
          return m.source == source && m.tag == tag;
        });
    if (it == box.queue.end()) return std::nullopt;
    Message msg = std::move(*it);
    box.queue.erase(it);
    return msg;
  }

  void wake_worker(int w) {
    Worker& wk = workers_[static_cast<std::size_t>(w)];
    {
      const std::lock_guard<std::mutex> lock(wk.mu);
      ++wk.epoch;
    }
    wk.cv.notify_all();
  }

  void wake_all_workers() {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      wake_worker(static_cast<int>(w));
    }
  }

  void check_rank(int r) const {
    if (r < 0 || r >= nranks_) {
      throw std::out_of_range("mpisim: rank out of range");
    }
  }

  int nranks_;
  std::vector<Mailbox> mailboxes_;
  std::vector<Worker> workers_;  ///< empty in threaded mode

  std::mutex bar_mu_;
  std::condition_variable bar_cv_;
  int bar_arrived_ = 0;
  std::atomic<std::uint64_t> bar_gen_{0};

  std::atomic<bool> poisoned_{false};
  std::mutex err_mu_;
  std::exception_ptr first_error_;

  std::atomic<std::uint64_t> stat_messages_{0};
  std::atomic<std::uint64_t> stat_bytes_{0};
  std::atomic<std::uint64_t> stat_wire_raw_{0};
  std::atomic<std::uint64_t> stat_wire_encoded_{0};
};

int Comm::size() const noexcept { return rt_->size(); }

void Comm::send_raw(int dest, int tag, const void* buf, std::size_t bytes) {
  rt_->abort_check();
  trace::count(trace::Counter::kMpisimMessages);
  trace::count(trace::Counter::kMpisimBytesSent, bytes);
  trace::observe(trace::Hist::kMpisimMsgBytes, bytes);
  rt_->note_message(bytes);
  flight::instant(
      flight::EventId::kMpiSend,
      flight::pack_pair(static_cast<std::uint64_t>(rank_),
                        static_cast<std::uint64_t>(dest)),
      flight::pack_pair(flight::current_reduction_id(), bytes));
  Runtime::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  const auto* p = static_cast<const std::byte*>(buf);
  msg.data.assign(p, p + bytes);
  rt_->post(dest, std::move(msg));
}

void Comm::recv_raw(int source, int tag, void* buf, std::size_t bytes) {
  Runtime::Message msg = rt_->take(rank_, source, tag);
  flight::instant(
      flight::EventId::kMpiRecv,
      flight::pack_pair(static_cast<std::uint64_t>(rank_),
                        static_cast<std::uint64_t>(source)),
      flight::pack_pair(flight::current_reduction_id(), bytes));
  if (msg.data.size() != bytes) {
    throw std::logic_error("mpisim: recv size mismatch (expected " +
                           std::to_string(bytes) + ", got " +
                           std::to_string(msg.data.size()) + ")");
  }
  copy_bytes(buf, msg.data.data(), bytes);
}

std::vector<std::byte> Comm::recv_any(int source, int tag) {
  Runtime::Message msg = rt_->take(rank_, source, tag);
  flight::instant(
      flight::EventId::kMpiRecv,
      flight::pack_pair(static_cast<std::uint64_t>(rank_),
                        static_cast<std::uint64_t>(source)),
      flight::pack_pair(flight::current_reduction_id(), msg.data.size()));
  return std::move(msg.data);
}

void Comm::send(int dest, int tag, const void* buf, std::size_t bytes) {
  check_user_tag(tag);
  send_raw(dest, tag, buf, bytes);
}

void Comm::recv(int source, int tag, void* buf, std::size_t bytes) {
  check_user_tag(tag);
  recv_raw(source, tag, buf, bytes);
}

void Comm::barrier() { rt_->barrier_wait(); }

Request Comm::irecv(int source, int tag, void* buf, std::size_t bytes) {
  check_user_tag(tag);
  Request req;
  req.comm_ = this;
  req.source_ = source;
  req.tag_ = tag;
  req.buf_ = buf;
  req.bytes_ = bytes;
  req.done_ = false;
  return req;
}

Request::~Request() {
  assert(done_ &&
         "destroying an incomplete mpisim::Request (wait(), test() or "
         "cancel() it first)");
}

Request::Request(Request&& other) noexcept
    : comm_(other.comm_),
      source_(other.source_),
      tag_(other.tag_),
      buf_(other.buf_),
      bytes_(other.bytes_),
      done_(other.done_) {
  other.comm_ = nullptr;
  other.done_ = true;
}

Request& Request::operator=(Request&& other) noexcept {
  if (this != &other) {
    assert(done_ && "overwriting an incomplete mpisim::Request");
    comm_ = other.comm_;
    source_ = other.source_;
    tag_ = other.tag_;
    buf_ = other.buf_;
    bytes_ = other.bytes_;
    done_ = other.done_;
    other.comm_ = nullptr;
    other.done_ = true;
  }
  return *this;
}

void Request::wait() {
  if (done_) return;
  comm_->recv_raw(source_, tag_, buf_, bytes_);
  done_ = true;
}

bool Request::test() {
  if (done_) return true;
  comm_->rt_->abort_check();  // a poll loop must not spin on a dead peer
  auto msg = comm_->rt_->try_take(comm_->rank_, source_, tag_);
  if (!msg) return false;
  if (msg->data.size() != bytes_) {
    throw std::logic_error("mpisim: irecv size mismatch");
  }
  copy_bytes(buf_, msg->data.data(), bytes_);
  done_ = true;
  return true;
}

void Request::cancel() {
  if (done_) return;
  // Discard the message if it already arrived so it cannot cross-match a
  // later receive; a message sent after this point stays in the mailbox.
  (void)comm_->rt_->try_take(comm_->rank_, source_, tag_);
  done_ = true;
}

void Comm::bcast(void* buf, std::size_t bytes, int root) {
  const int tag = next_collective_tag();
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send_raw(r, tag, buf, bytes);
    }
  } else {
    recv_raw(root, tag, buf, bytes);
  }
}

void Comm::gather(const void* send_buf, std::size_t bytes_each, void* recv_buf,
                  int root) {
  const int tag = next_collective_tag();
  if (rank_ == root) {
    auto* out = static_cast<std::byte*>(recv_buf);
    for (int r = 0; r < size(); ++r) {
      std::byte* slot = out + static_cast<std::size_t>(r) * bytes_each;
      if (r == root) {
        copy_bytes(slot, send_buf, bytes_each);
      } else {
        recv_raw(r, tag, slot, bytes_each);
      }
    }
  } else {
    send_raw(root, tag, send_buf, bytes_each);
  }
}

void Comm::scatter(const void* send_buf, std::size_t bytes_each,
                   void* recv_buf, int root) {
  const int tag = next_collective_tag();
  if (rank_ == root) {
    const auto* in = static_cast<const std::byte*>(send_buf);
    for (int r = 0; r < size(); ++r) {
      const std::byte* slot = in + static_cast<std::size_t>(r) * bytes_each;
      if (r == root) {
        copy_bytes(recv_buf, slot, bytes_each);
      } else {
        send_raw(r, tag, slot, bytes_each);
      }
    }
  } else {
    recv_raw(root, tag, recv_buf, bytes_each);
  }
}

void Comm::allgather(const void* send_buf, std::size_t bytes_each,
                     void* recv_buf) {
  gather(send_buf, bytes_each, recv_buf, /*root=*/0);
  bcast(recv_buf, bytes_each * static_cast<std::size_t>(size()), /*root=*/0);
}

void Comm::sendrecv(int dest, const void* send_buf, std::size_t send_bytes,
                    int source, void* recv_buf, std::size_t recv_bytes,
                    int tag) {
  send(dest, tag, send_buf, send_bytes);
  recv(source, tag, recv_buf, recv_bytes);
}

// ---------------------------------------------------------------------------
// Collectives: one implementation shared by Comm (identity rank map) and
// Comm::Group (member map). Four topologies over the same codec-aware
// transport; docs/MPISIM.md derives the schedules and the FIFO-tag
// argument that lets a whole collective reuse a single tag.

struct detail::Coll {
  /// Largest power of two q = 2^m that fits in p, and the r = p - q excess
  /// ranks that fold pairwise before/after the power-of-two phases.
  struct Pow2 {
    int q = 1;
    int m = 0;
    int r = 0;
  };

  static Pow2 pow2_split(int p) {
    Pow2 s;
    while (s.q * 2 <= p) {
      s.q *= 2;
      ++s.m;
    }
    s.r = p - s.q;
    return s;
  }

  struct Ctx {
    Comm& c;
    const std::vector<int>* map;  ///< group members, or null for identity
    int me;                       ///< my index in the collective
    int p;                        ///< collective size
    int tag;
    const Datatype& dt;
    const Op& op;
    std::size_t count;
    bool sparse;
    std::vector<std::byte> scratch;  ///< recv_combine staging, lazily sized
  };

  static int real_rank(const Ctx& x, int idx) {
    return x.map ? (*x.map)[static_cast<std::size_t>(idx)] : idx;
  }

  /// Collective index of virtual rank v in the power-of-two phase.
  static int vreal(const Pow2& s, int v) { return v < s.r ? 2 * v : v + s.r; }

  static void note_wire(Ctx& x, std::size_t raw_bytes,
                        std::size_t encoded_bytes) {
    trace::count(trace::Counter::kMpisimWireRawBytes, raw_bytes);
    trace::count(trace::Counter::kMpisimWireEncodedBytes, encoded_bytes);
    x.c.rt_->note_wire(raw_bytes, encoded_bytes);
  }

  /// Ships elements [lo, hi) of `base`. Sparse mode encodes them together
  /// with the sender's current status mask — in-band status gossip.
  static void send_range(Ctx& x, int to, const std::byte* base,
                         std::size_t lo, std::size_t hi) {
    const std::size_t raw_bytes = (hi - lo) * x.dt.size;
    const std::byte* p = base + lo * x.dt.size;
    if (!x.sparse) {
      note_wire(x, raw_bytes, raw_bytes);
      x.c.send_raw(real_rank(x, to), x.tag, p, raw_bytes);
      return;
    }
    const std::vector<std::byte> msg =
        x.op.codec->encode(p, hi - lo, x.op.observed_status());
    note_wire(x, raw_bytes, msg.size());
    x.c.send_raw(real_rank(x, to), x.tag, msg.data(), msg.size());
  }

  /// Receives elements [lo, hi) into `base` (no combine). Sparse mode ORs
  /// the message's status mask into this rank's Op mask.
  static void recv_range(Ctx& x, int from, std::byte* base, std::size_t lo,
                         std::size_t hi) {
    if (!x.sparse) {
      x.c.recv_raw(real_rank(x, from), x.tag, base + lo * x.dt.size,
                   (hi - lo) * x.dt.size);
      return;
    }
    const std::vector<std::byte> msg = x.c.recv_any(real_rank(x, from), x.tag);
    const std::uint8_t st = x.op.codec->decode(
        msg.data(), msg.size(), base + lo * x.dt.size, hi - lo);
    if (st != 0) {
      x.op.sticky_status->fetch_or(st, std::memory_order_relaxed);
    }
  }

  /// Receives elements [lo, hi) and combines them into `acc` in ascending
  /// element order (the deterministic per-rank op order).
  static void recv_combine(Ctx& x, int from, std::byte* acc, std::size_t lo,
                           std::size_t hi) {
    if (x.scratch.size() < x.count * x.dt.size) {
      x.scratch.resize(x.count * x.dt.size);
    }
    recv_range(x, from, x.scratch.data(), lo, hi);
    for (std::size_t e = lo; e < hi; ++e) {
      x.op.fn(acc + e * x.dt.size, x.scratch.data() + e * x.dt.size);
    }
  }

  /// Start-of-collective bookkeeping shared by reduce and allreduce.
  static void begin(const Op& op, ReduceAlgo algo) {
    if (op.codec && !op.sticky_status) {
      throw std::invalid_argument(
          "mpisim: an Op with a wire codec requires sticky_status (the "
          "codec carries the status mask in-band)");
    }
    op.reset_status();
    if (op.sticky_status && op.seed_status != 0) {
      op.sticky_status->fetch_or(op.seed_status, std::memory_order_relaxed);
    }
    trace::count(trace::Counter::kMpisimReductions);
    switch (algo) {
      case ReduceAlgo::kLinear:
        trace::count(trace::Counter::kMpisimAlgoLinear);
        break;
      case ReduceAlgo::kBinomialTree:
        trace::count(trace::Counter::kMpisimAlgoBinomialTree);
        break;
      case ReduceAlgo::kRecursiveDoubling:
        trace::count(trace::Counter::kMpisimAlgoRecDoubling);
        break;
      case ReduceAlgo::kRecursiveHalving:
        trace::count(trace::Counter::kMpisimAlgoRecHalving);
        break;
    }
  }

  /// Pairwise pre-fold for non-power-of-two collectives: the first 2r
  /// ranks fold odd into even, leaving q = 2^m virtual participants.
  /// Returns this rank's virtual rank, or -1 for folded-out (odd) ranks.
  static int fold_in(Ctx& x, std::byte* acc, const Pow2& s) {
    if (x.me >= 2 * s.r) return x.me - s.r;
    if (x.me % 2 == 0) {
      recv_combine(x, x.me + 1, acc, 0, x.count);
      return x.me / 2;
    }
    send_range(x, x.me - 1, acc, 0, x.count);
    return -1;
  }

  /// Post-distribute the full result back to folded-out ranks.
  static void fold_out(Ctx& x, std::byte* acc, const Pow2& s) {
    if (x.me >= 2 * s.r) return;
    if (x.me % 2 == 0) {
      send_range(x, x.me + 1, acc, 0, x.count);
    } else {
      recv_range(x, x.me - 1, acc, 0, x.count);
    }
  }

  /// Recursive-doubling butterfly: log2(q) pairwise full-buffer exchanges;
  /// every participant ends with the complete reduction (and, in sparse
  /// mode, the OR of every participant's status mask — hypercube gossip).
  static void butterfly(Ctx& x, std::byte* acc) {
    const Pow2 s = pow2_split(x.p);
    const int vr = fold_in(x, acc, s);
    if (vr >= 0) {
      for (int mask = 1; mask < s.q; mask <<= 1) {
        const int partner = vreal(s, vr ^ mask);
        send_range(x, partner, acc, 0, x.count);
        recv_combine(x, partner, acc, 0, x.count);
      }
    }
    fold_out(x, acc, s);
  }

  /// Element range owned by virtual rank v after `level` halvings: each
  /// round splits [lo, hi) at lo + ceil(len/2), low half to the 0-bit
  /// side. Ranges may be empty when count < q — the (status-carrying)
  /// empty messages still flow, keeping the schedule and gossip uniform.
  static std::pair<std::size_t, std::size_t> vrange(std::size_t count, int m,
                                                    int v, int level) {
    std::size_t lo = 0;
    std::size_t hi = count;
    for (int i = 0; i < level; ++i) {
      const std::size_t mid = lo + (hi - lo + 1) / 2;
      if (((v >> (m - 1 - i)) & 1) != 0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return {lo, hi};
  }

  /// Recursive-halving reduce-scatter: after round i, each virtual rank
  /// holds the combined elements of vrange(vr, i+1). Partner order is
  /// top bit first (q/2, q/4, ..., 1).
  static void reduce_scatter(Ctx& x, std::byte* acc, const Pow2& s, int vr) {
    for (int i = 0; i < s.m; ++i) {
      const int pvr = vr ^ (s.q >> (i + 1));
      const int partner = vreal(s, pvr);
      const auto [plo, phi] = vrange(x.count, s.m, pvr, i + 1);
      const auto [mlo, mhi] = vrange(x.count, s.m, vr, i + 1);
      send_range(x, partner, acc, plo, phi);
      recv_combine(x, partner, acc, mlo, mhi);
    }
  }

  /// Allgather by recursive doubling of the owned range (the reverse
  /// partner order of reduce_scatter; FIFO per (source, tag) keeps the
  /// back-to-back same-partner messages correctly paired).
  static void allgather_ranges(Ctx& x, std::byte* acc, const Pow2& s,
                               int vr) {
    for (int i = s.m - 1; i >= 0; --i) {
      const int pvr = vr ^ (s.q >> (i + 1));
      const int partner = vreal(s, pvr);
      const auto [mlo, mhi] = vrange(x.count, s.m, vr, i + 1);
      const auto [plo, phi] = vrange(x.count, s.m, pvr, i + 1);
      send_range(x, partner, acc, mlo, mhi);
      recv_range(x, partner, acc, plo, phi);
    }
  }

  /// Codec-aware broadcast of a finished result (used by the reduce+bcast
  /// allreduce shapes): in sparse mode the root's message also carries its
  /// final — global — status mask, so every rank ends with full status.
  static void bcast_result(Ctx& x, std::byte* buf, int root) {
    x.tag = x.c.next_collective_tag();
    const std::size_t raw_bytes = x.count * x.dt.size;
    if (x.me != root) {
      recv_range(x, root, buf, 0, x.count);
      return;
    }
    if (!x.sparse) {
      for (int g = 0; g < x.p; ++g) {
        if (g == root) continue;
        note_wire(x, raw_bytes, raw_bytes);
        x.c.send_raw(real_rank(x, g), x.tag, buf, raw_bytes);
      }
      return;
    }
    const std::vector<std::byte> msg =
        x.op.codec->encode(buf, x.count, x.op.observed_status());
    for (int g = 0; g < x.p; ++g) {
      if (g == root) continue;
      note_wire(x, raw_bytes, msg.size());
      x.c.send_raw(real_rank(x, g), x.tag, msg.data(), msg.size());
    }
  }

  static void reduce_core(Ctx& x, const std::byte* send_buf,
                          std::byte* recv_buf, int root, ReduceAlgo algo) {
    const std::size_t bytes = x.count * x.dt.size;
    switch (algo) {
      case ReduceAlgo::kLinear: {
        if (x.me == root) {
          copy_bytes(recv_buf, send_buf, bytes);
          // Deterministic order: ascending rank, regardless of arrival.
          for (int g = 0; g < x.p; ++g) {
            if (g == root) continue;
            recv_combine(x, g, recv_buf, 0, x.count);
          }
        } else {
          send_range(x, root, send_buf, 0, x.count);
        }
        return;
      }
      case ReduceAlgo::kBinomialTree: {
        // log2(p) rounds of pairwise combines on root-relative ranks, the
        // higher partner folding into the lower — a different deterministic
        // op order than kLinear (bit-identical for HP, different rounding
        // for doubles).
        const int vr = (x.me - root + x.p) % x.p;
        std::vector<std::byte> acc(bytes);
        copy_bytes(acc.data(), send_buf, bytes);
        for (int step = 1; step < x.p; step <<= 1) {
          if ((vr & step) != 0) {
            send_range(x, (vr - step + root) % x.p, acc.data(), 0, x.count);
            break;
          }
          if (vr + step < x.p) {
            recv_combine(x, (vr + step + root) % x.p, acc.data(), 0, x.count);
          }
        }
        if (x.me == root) copy_bytes(recv_buf, acc.data(), bytes);
        return;
      }
      case ReduceAlgo::kRecursiveDoubling: {
        // The butterfly is inherently an allreduce; as a rooted reduce,
        // off-root ranks simply discard their copy (topology testbed, not
        // a message-optimal rooted reduce — see ReduceAlgo docs).
        std::vector<std::byte> acc(bytes);
        copy_bytes(acc.data(), send_buf, bytes);
        butterfly(x, acc.data());
        if (x.me == root) copy_bytes(recv_buf, acc.data(), bytes);
        return;
      }
      case ReduceAlgo::kRecursiveHalving: {
        std::vector<std::byte> acc(bytes);
        copy_bytes(acc.data(), send_buf, bytes);
        const Pow2 s = pow2_split(x.p);
        const int vr = fold_in(x, acc.data(), s);
        if (vr >= 0) reduce_scatter(x, acc.data(), s, vr);
        // Gather the owned (fully reduced) ranges to the root. Empty
        // ranges are skipped on both sides; the root still receives every
        // participant's status because reduce-scatter gossip left every
        // owner holding the global mask.
        for (int v = 0; v < s.q; ++v) {
          const auto [lo, hi] = vrange(x.count, s.m, v, s.m);
          if (lo == hi) continue;
          const int owner = vreal(s, v);
          if (x.me == root && owner == root) {
            copy_bytes(recv_buf + lo * x.dt.size, acc.data() + lo * x.dt.size,
                        (hi - lo) * x.dt.size);
          } else if (x.me == root) {
            recv_range(x, owner, recv_buf, lo, hi);
          } else if (x.me == owner) {
            send_range(x, root, acc.data(), lo, hi);
          }
        }
        return;
      }
    }
  }

  static void reduce(Comm& c, const std::vector<int>* map, int me, int p,
                     const void* send_buf, void* recv_buf, std::size_t count,
                     const Datatype& dt, const Op& op, int root,
                     ReduceAlgo algo) {
    begin(op, algo);
    ReduceAlgo effective = algo;
    if (count == 0 && (algo == ReduceAlgo::kRecursiveDoubling ||
                       algo == ReduceAlgo::kRecursiveHalving)) {
      // The element-range recursion has nothing to split; linear still
      // moves every rank's (status-carrying) empty message to the root.
      effective = ReduceAlgo::kLinear;
    }
    Ctx x{c,  map, me, p, c.next_collective_tag(), dt, op, count,
          op.codec != nullptr, {}};
    const flight::Span reduce_span(flight::EventId::kMpiReduce,
                                   flight::current_reduction_id(),
                                   count * dt.size);
    reduce_core(x, static_cast<const std::byte*>(send_buf),
                static_cast<std::byte*>(recv_buf), root, effective);
  }

  static void allreduce(Comm& c, const std::vector<int>* map, int me, int p,
                        const void* send_buf, void* recv_buf,
                        std::size_t count, const Datatype& dt, const Op& op,
                        ReduceAlgo algo) {
    begin(op, algo);
    ReduceAlgo effective = algo;
    if (count == 0 && (algo == ReduceAlgo::kRecursiveDoubling ||
                       algo == ReduceAlgo::kRecursiveHalving)) {
      effective = ReduceAlgo::kBinomialTree;
    }
    Ctx x{c,  map, me, p, c.next_collective_tag(), dt, op, count,
          op.codec != nullptr, {}};
    const flight::Span reduce_span(flight::EventId::kMpiReduce,
                                   flight::current_reduction_id(),
                                   count * dt.size);
    const std::size_t bytes = count * dt.size;
    auto* recv = static_cast<std::byte*>(recv_buf);
    switch (effective) {
      case ReduceAlgo::kLinear:
      case ReduceAlgo::kBinomialTree:
        reduce_core(x, static_cast<const std::byte*>(send_buf), recv,
                    /*root=*/0, effective);
        bcast_result(x, recv, /*root=*/0);
        return;
      case ReduceAlgo::kRecursiveDoubling: {
        std::vector<std::byte> acc(bytes);
        copy_bytes(acc.data(), send_buf, bytes);
        butterfly(x, acc.data());
        copy_bytes(recv, acc.data(), bytes);
        return;
      }
      case ReduceAlgo::kRecursiveHalving: {
        std::vector<std::byte> acc(bytes);
        copy_bytes(acc.data(), send_buf, bytes);
        const Pow2 s = pow2_split(x.p);
        const int vr = fold_in(x, acc.data(), s);
        if (vr >= 0) {
          reduce_scatter(x, acc.data(), s, vr);
          allgather_ranges(x, acc.data(), s, vr);
        }
        fold_out(x, acc.data(), s);
        copy_bytes(recv, acc.data(), bytes);
        return;
      }
    }
  }
};

void Comm::reduce(const void* send_buf, void* recv_buf, std::size_t count,
                  const Datatype& dt, const Op& op, int root,
                  ReduceAlgo algo) {
  detail::Coll::reduce(*this, nullptr, rank_, size(), send_buf, recv_buf,
                       count, dt, op, root, algo);
}

void Comm::allreduce(const void* send_buf, void* recv_buf, std::size_t count,
                     const Datatype& dt, const Op& op, ReduceAlgo algo) {
  detail::Coll::allreduce(*this, nullptr, rank_, size(), send_buf, recv_buf,
                          count, dt, op, algo);
}

Comm::Group Comm::split(int color, int key) {
  // Collective: allgather every rank's (color, key).
  struct ColorKey {
    int color;
    int key;
  };
  const ColorKey mine{color, key};
  std::vector<ColorKey> all(static_cast<std::size_t>(size()));
  allgather(&mine, sizeof mine, all.data());

  // Group members: ranks with my color, ordered by (key, parent rank).
  std::vector<int> members;
  for (int r = 0; r < size(); ++r) {
    if (all[static_cast<std::size_t>(r)].color == color) members.push_back(r);
  }
  std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
    return all[static_cast<std::size_t>(a)].key <
           all[static_cast<std::size_t>(b)].key;
  });
  int my_index = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == rank_) my_index = static_cast<int>(i);
  }
  return Group(*this, std::move(members), my_index);
}

void Comm::Group::barrier() {
  const int tag = parent_->next_collective_tag();
  const char token = 0;
  if (my_index_ == 0) {
    char sink = 0;
    for (int g = 1; g < size(); ++g) {
      parent_->recv_raw(parent_rank(g), tag, &sink, sizeof sink);
    }
    for (int g = 1; g < size(); ++g) {
      parent_->send_raw(parent_rank(g), tag, &token, sizeof token);
    }
  } else {
    parent_->send_raw(parent_rank(0), tag, &token, sizeof token);
    char sink = 0;
    parent_->recv_raw(parent_rank(0), tag, &sink, sizeof sink);
  }
}

void Comm::Group::bcast(void* buf, std::size_t bytes, int group_root) {
  const int tag = parent_->next_collective_tag();
  if (my_index_ == group_root) {
    for (int g = 0; g < size(); ++g) {
      if (g != group_root) parent_->send_raw(parent_rank(g), tag, buf, bytes);
    }
  } else {
    parent_->recv_raw(parent_rank(group_root), tag, buf, bytes);
  }
}

void Comm::Group::reduce(const void* send_buf, void* recv_buf,
                         std::size_t count, const Datatype& dt, const Op& op,
                         int group_root, ReduceAlgo algo) {
  detail::Coll::reduce(*parent_, &members_, my_index_, size(), send_buf,
                       recv_buf, count, dt, op, group_root, algo);
}

// ---------------------------------------------------------------------------
// Engines.

namespace {

/// Rank bodies run under this wrapper in both engines: the first real
/// failure poisons the runtime (waking every blocked peer); the resulting
/// RankAborted cascade on other ranks is expected and not re-recorded.
void guarded_body(Runtime& rt, const std::function<void(Comm&)>& body,
                  Comm& comm) {
  try {
    body(comm);
  } catch (const RankAborted&) {
    // A peer failed first; the root cause is already recorded.
  } catch (...) {
    rt.poison(std::current_exception());
  }
}

#if HPSUM_MPISIM_HAS_FIBERS
void worker_loop(Runtime& rt, std::vector<RankCtx>& ctxs, int nranks, int w,
                 int workers) {
  std::vector<RankCtx*> mine;
  for (int r = w; r < nranks; r += workers) {
    mine.push_back(&ctxs[static_cast<std::size_t>(r)]);
  }
  std::size_t live = mine.size();
  Runtime::Worker& me = rt.worker(w);
  while (live > 0) {
    std::uint64_t seen = 0;
    {
      const std::lock_guard<std::mutex> lock(me.mu);
      seen = me.epoch;
    }
    bool progressed = false;
    for (RankCtx* c : mine) {
      if (c->done || !rt.ready(*c)) continue;
      tl_ctx = c;
      c->fiber->resume();
      tl_ctx = nullptr;
      progressed = true;
      if (c->fiber->finished()) {
        c->done = true;
        --live;
      }
    }
    if (live > 0 && !progressed) {
      // Sleep until the epoch moves past the pre-scan snapshot: any wake
      // that raced the scan is caught by the predicate, not lost.
      std::unique_lock<std::mutex> lock(me.mu);
      me.cv.wait(lock, [&] { return me.epoch != seen; });
    }
  }
}
#endif  // HPSUM_MPISIM_HAS_FIBERS

}  // namespace

void run(int nranks, const std::function<void(Comm&)>& body,
         const RunOptions& opts) {
  if (nranks < 1) {
    throw std::invalid_argument("mpisim::run: nranks must be >= 1");
  }
  RunMode mode = opts.mode;
  if (mode == RunMode::kAuto) {
    mode = nranks <= kAutoThreadLimit ? RunMode::kThreads
                                      : RunMode::kMultiplexed;
  }
#if !HPSUM_MPISIM_HAS_FIBERS
  mode = RunMode::kThreads;
#endif
  Runtime rt(nranks);
  int workers_used = 0;
  if (mode == RunMode::kThreads) {
    workers_used = nranks;
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back([&rt, &body, r] {
        flight::set_track("mpisim", r, 0);
        Comm comm(rt, r);
        guarded_body(rt, body, comm);
      });
    }
    threads.clear();  // join: every rank either finished or aborted
  } else {
#if HPSUM_MPISIM_HAS_FIBERS
    const auto hw = static_cast<int>(std::thread::hardware_concurrency());
    int workers = opts.workers > 0 ? opts.workers : (hw > 0 ? hw : 1);
    workers = std::min(workers, nranks);
    workers_used = workers;
    rt.init_workers(workers);
    std::vector<RankCtx> ctxs(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      RankCtx& c = ctxs[static_cast<std::size_t>(r)];
      c.rank = r;
      c.fiber = std::make_unique<detail::Fiber>(
          opts.stack_bytes, [&rt, &body, r] {
            Comm comm(rt, r);
            guarded_body(rt, body, comm);
          });
    }
    {
      std::vector<std::jthread> pool;
      pool.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        pool.emplace_back([&rt, &ctxs, nranks, w, workers] {
          flight::set_track("mpisim.mux", w, 0);
          worker_loop(rt, ctxs, nranks, w, workers);
        });
      }
    }
#endif  // HPSUM_MPISIM_HAS_FIBERS
  }
  if (opts.stats != nullptr) {
    *opts.stats = rt.stats_snapshot();
    opts.stats->workers = workers_used;
    opts.stats->mode = mode;
  }
  if (std::exception_ptr err = rt.first_error()) {
    std::rethrow_exception(err);
  }
}

void run(int nranks, const std::function<void(Comm&)>& body) {
  run(nranks, body, RunOptions{});
}

}  // namespace hpsum::mpisim
