// reprosum — Demmel & Nguyen-style reproducible binned summation.
//
// The paper's related work (§I, refs [6-8]) contrasts HP with the other
// major road to reproducibility: pre-rounded / binned summation as in
// Demmel & Nguyen's "Fast Reproducible Floating-Point Summation" and
// ReproBLAS. This module implements that technique (simplified: fixed K
// levels of W bits, bound to a known magnitude ceiling) so the two
// philosophies can be compared head to head in this repo's benches:
//
//   - reprosum: plain doubles only, ~1 FP op per level per summand,
//     REPRODUCIBLE (bit-identical for any order/partitioning) but NOT
//     exact — it keeps only the top K*W bits below the magnitude ceiling;
//   - HP: exact AND reproducible, at integer-limb cost.
//
// How it works: each level l owns a power-of-two unit u_l and the constant
// C_l = 1.5 * 2^52 * u_l. fl((C_l + x) - C_l) rounds x to a multiple of
// u_l EXACTLY (the classic extraction EFT), the residue x - q moves to the
// next level, and each bin accumulates multiples of u_l that provably
// never round (count and magnitude are budgeted) — so bin values are
// order-invariant integers in disguise, and only the final top-down fold
// rounds, deterministically.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hpsum::reprosum {

/// Reproducible binned accumulator. All accumulators that will ever be
/// merged must be constructed with the SAME (max_abs, max_count) binding —
/// that shared binding is what makes the bins commensurable (the same
/// a-priori-knowledge contract the paper notes for fixed-point methods).
class ReproSum {
 public:
  /// Levels of extraction and bits per level: the result keeps roughly
  /// kLevels * kBitsPerLevel bits below the magnitude ceiling.
  static constexpr int kLevels = 3;
  static constexpr int kBitsPerLevel = 20;

  /// Binds the accumulator to a magnitude ceiling (|x| <= max_abs for
  /// every future summand) and a total count budget (sum of all adds
  /// across all merged accumulators). Throws std::invalid_argument for
  /// non-finite/non-positive ceilings or budgets that would overflow the
  /// bins (max_count must be < 2^31).
  ReproSum(double max_abs, std::size_t max_count);

  /// Accumulates one summand. Returns false (and accumulates nothing) if
  /// |x| exceeds the binding or the count budget is exhausted.
  bool add(double x) noexcept;

  /// Merges another accumulator with the identical binding (checked;
  /// throws std::invalid_argument). Exact: bins add without rounding.
  void merge(const ReproSum& other);

  /// The reproducible result: deterministic top-down fold of the bins.
  /// Identical for every summation order and partitioning under the same
  /// binding; accurate to ~2^(-kLevels*kBitsPerLevel) * max_abs * count.
  [[nodiscard]] double result() const noexcept;

  /// Summands accumulated so far (across merges).
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

 private:
  double c_[kLevels];     ///< extraction constants C_l
  double bins_[kLevels];  ///< bin partial sums (multiples of u_l, exact)
  double max_abs_;
  std::size_t max_count_;
  std::size_t count_ = 0;
};

}  // namespace hpsum::reprosum
