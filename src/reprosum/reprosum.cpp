#include "reprosum/reprosum.hpp"

#include <cmath>
#include <stdexcept>

namespace hpsum::reprosum {

ReproSum::ReproSum(double max_abs, std::size_t max_count)
    : max_abs_(max_abs), max_count_(max_count) {
  if (!std::isfinite(max_abs) || max_abs <= 0.0) {
    throw std::invalid_argument("ReproSum: max_abs must be finite positive");
  }
  // Bin-exactness budget: a bin holds up to max_count values, each a
  // multiple of u_l with magnitude < 2^kBitsPerLevel * u_l (level 0: the
  // ceiling itself). Their sum stays below C_l's ulp-stability window when
  // log2(count) + kBitsPerLevel <= 51.
  if (max_count < 1 || max_count >= (std::size_t{1} << 31)) {
    throw std::invalid_argument("ReproSum: max_count out of budget");
  }
  const int e0 = std::ilogb(max_abs) + 1;  // |x| <= max_abs < 2^e0
  if (e0 > 900 || e0 < -900) {
    throw std::invalid_argument("ReproSum: ceiling exponent out of range");
  }
  for (int l = 0; l < kLevels; ++l) {
    // Unit u_l = 2^(e0 - (l+1)*W); C_l = 1.5 * 2^52 * u_l, whose ulp is
    // exactly u_l throughout the accumulation window.
    c_[l] = std::ldexp(1.5, e0 - (l + 1) * kBitsPerLevel + 52);
    bins_[l] = 0.0;
  }
}

bool ReproSum::add(double x) noexcept {
  if (!(std::fabs(x) <= max_abs_) || count_ >= max_count_) {
    return false;  // also rejects NaN
  }
  ++count_;
  for (int l = 0; l < kLevels; ++l) {
    // Extraction EFT: q is x rounded to a multiple of u_l, computed
    // exactly; the residue x - q is exact as well (|x - q| <= u_l / 2).
    const double t = c_[l] + x;
    const double q = t - c_[l];
    bins_[l] += q;
    x -= q;
  }
  // Residue below u_{K-1}/2 is discarded: the method's rounding.
  return true;
}

void ReproSum::merge(const ReproSum& other) {
  if (other.max_abs_ != max_abs_ || other.max_count_ != max_count_) {
    throw std::invalid_argument("ReproSum: merging different bindings");
  }
  for (int l = 0; l < kLevels; ++l) bins_[l] += other.bins_[l];
  count_ += other.count_;
}

double ReproSum::result() const noexcept {
  // Deterministic top-down fold; every run with the same binding folds the
  // same bin values in the same order.
  double r = 0.0;
  for (int l = 0; l < kLevels; ++l) r += bins_[l];
  return r;
}

}  // namespace hpsum::reprosum
