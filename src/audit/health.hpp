// health — derived numeric-health indicators over hpsum_trace snapshots.
//
// Raw counters answer "how much happened"; operating a long-running
// exact-summation service (ROADMAP: hpsum_serve) needs the next
// derivative: "is what happened *healthy*?" This layer is a fixed rule
// table that evaluates a Snapshot into named indicators, each a ratio of
// catalog counters with ok/warn/fail thresholds:
//
//   scatter.fast_path_coverage  scatter deposits / all deposits — the share
//                               of adds that took the paper's fast path
//   simd.vector_coverage        SIMD-lane deposits / block deposits — how
//                               much of the block path ran vectorized
//   atomic.cas_retry_rate       CAS retries / CAS adds — contention on the
//                               shared accumulator
//   status.raise_rate           sticky-status raises / deposits — how often
//                               the exactness contract had to flag loss
//   mpisim.wire_compression     encoded / raw collective payload bytes —
//                               whether the sparse codec is earning its keep
//   snapshot.retry_rate         torn-shard re-reads / engine snapshots —
//                               reader/publisher collision pressure in the
//                               engine ShardSet seqlock
//
// A rule whose denominator is zero evaluates to kNotApplicable (that
// subsystem didn't run), never to a spurious ok/fail. Thresholds are
// "warn at" / "fail at" on the ratio, with a per-rule direction (a high
// fast-path coverage is good; a high retry rate is bad).
//
// The layer lives in src/audit (not src/trace) because it *consumes* the
// telemetry contract rather than defining it: trace stays dependency-free
// below core, while health sits beside the other diagnostics.
// tools/hpsum_top.py computes the same ratios in Python from the pulse
// JSONL stream; docs/OBSERVABILITY.md is the shared rule catalog.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"

namespace hpsum::audit {

enum class HealthLevel { kOk, kWarn, kFail, kNotApplicable };

[[nodiscard]] std::string_view to_string(HealthLevel level) noexcept;

/// One evaluated indicator.
struct HealthIndicator {
  std::string_view name;    ///< stable dotted name, e.g. "atomic.cas_retry_rate"
  HealthLevel level = HealthLevel::kNotApplicable;
  double ratio = 0.0;       ///< the evaluated ratio (0 when kNotApplicable)
  std::uint64_t numerator = 0;
  std::uint64_t denominator = 0;
  double warn_at = 0.0;     ///< threshold the warn level starts at
  double fail_at = 0.0;     ///< threshold the fail level starts at
  bool higher_is_better = false;
};

/// A full evaluation: every catalog rule, in rule-table order.
struct HealthReport {
  std::vector<HealthIndicator> indicators;
  /// Worst level across indicators (kNotApplicable entries are skipped;
  /// an all-N/A report is kNotApplicable).
  HealthLevel overall = HealthLevel::kNotApplicable;
};

/// Number of rules in the fixed catalog.
[[nodiscard]] std::size_t health_rule_count() noexcept;

/// Evaluates every rule against `snap`. In HPSUM_TRACE=OFF builds all
/// counters are zero, so every indicator is kNotApplicable — the report
/// stays well-formed either way.
[[nodiscard]] HealthReport evaluate_health(const trace::Snapshot& snap);

/// Looks an evaluated indicator up by its stable name.
[[nodiscard]] std::optional<HealthIndicator> find_indicator(
    const HealthReport& report, std::string_view name) noexcept;

/// {"hpsum_health": 1, "overall": "...", "indicators": [{name, level,
///  ratio, numerator, denominator, warn_at, fail_at, higher_is_better}]}
[[nodiscard]] std::string health_report_json(const HealthReport& report);

/// Convenience: evaluate_health(trace::snapshot()) rendered as JSON.
[[nodiscard]] std::string health_report_json();

}  // namespace hpsum::audit
