// audit — "how order-sensitive is my reduction?" and "where exactly did
// two backends disagree?"
//
// Two diagnostics:
//   - order_sensitivity: the paper's §II.A study, packaged as a diagnostic
//     a user can run on their own data: shuffle the summands many times,
//     sum each order with plain doubles, and report the distribution of
//     results around the exact (HP) answer. A stddev of zero means the
//     data is benign at double precision; anything else quantifies how
//     much silent variation a parallel schedule could introduce — before
//     it shows up as an irreproducible run.
//   - compare_limbs / write_forensic_bundle: first-divergence forensics
//     for the order-invariance contract itself. When two backends that
//     must agree bit-for-bit don't, the bundle pins the first divergent
//     limb, both limb vectors in hex, both sticky statuses, an environment
//     fingerprint, and the last K flight-recorder events per thread
//     (trace/flight.hpp) — a non-reproducibility report actionable from a
//     single artifact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/hp_config.hpp"
#include "core/hp_status.hpp"
#include "trace/trace.hpp"
#include "util/limbs.hpp"

namespace hpsum::audit {

/// Result of an order-sensitivity study.
struct SensitivityReport {
  std::size_t trials = 0;
  double exact = 0.0;        ///< HP exact sum, rounded once
  double mean = 0.0;         ///< mean of shuffled double sums
  double stddev = 0.0;       ///< spread of shuffled double sums
  double worst_abs_error = 0.0;  ///< max |double sum - exact|
  double naive_error = 0.0;  ///< |unshuffled double sum - exact|
  HpConfig config;           ///< format the audit sized for the data
  /// Telemetry delta across the study (what the exact reduction did: fast-
  /// path deposits, carry chains, status raises). All-zero in
  /// HPSUM_TRACE=OFF builds.
  trace::Snapshot trace_delta;
};

/// Runs the study: `trials` random permutations (deterministic in `seed`),
/// each summed left-to-right in double, compared against the exact HP sum
/// using a format sized from the data itself (hp_plan). Throws
/// std::invalid_argument for non-finite data or unsatisfiable formats.
[[nodiscard]] SensitivityReport order_sensitivity(std::span<const double> xs,
                                                  std::size_t trials = 256,
                                                  std::uint64_t seed = 1);

/// Outcome of a cross-backend bit comparison (compare_limbs).
struct DivergenceReport {
  bool diverged = false;       ///< any limb or status difference
  std::string label_a;         ///< e.g. "sequential"
  std::string label_b;         ///< e.g. "mpisim/8ranks"
  /// First differing limb index, big-endian like the HP layout itself
  /// (0 = MOST significant limb). SIZE_MAX when only the status differs or
  /// the limb counts disagree (then the shorter length is the "divergence"
  /// and limb_index is the common-prefix mismatch if any).
  std::size_t limb_index = SIZE_MAX;
  std::vector<util::Limb> limbs_a;
  std::vector<util::Limb> limbs_b;
  HpStatus status_a = HpStatus::kOk;
  HpStatus status_b = HpStatus::kOk;
};

/// Compares two HP limb vectors (plus their sticky statuses) that the
/// order-invariance contract says must be bit-identical. Returns a report
/// with diverged=false when they agree; otherwise the first divergent limb
/// index and both sides captured for the bundle.
[[nodiscard]] DivergenceReport compare_limbs(std::string_view label_a,
                                             util::ConstLimbSpan a,
                                             HpStatus status_a,
                                             std::string_view label_b,
                                             util::ConstLimbSpan b,
                                             HpStatus status_b);

/// Writes `report` as a JSON forensic bundle to `path` ("-" or "" =
/// stdout): schema marker "hpsum_forensic": 1, both limb vectors in hex,
/// the first divergent limb, sticky statuses, an environment fingerprint
/// (compiler, trace/flight state, hardware concurrency, HPSUM_*
/// environment), and the last `last_k_events` flight events per thread.
/// Returns false (writing nothing) if the file cannot be opened. Usable
/// for agreeing reports too ("diverged": false) as a run receipt.
bool write_forensic_bundle(const std::string& path,
                           const DivergenceReport& report,
                           std::size_t last_k_events = 32);

/// The JSON body write_forensic_bundle emits (for tests and in-process
/// consumers).
[[nodiscard]] std::string forensic_bundle_json(const DivergenceReport& report,
                                               std::size_t last_k_events = 32);

}  // namespace hpsum::audit
