// audit — "how order-sensitive is my reduction?"
//
// The paper's §II.A study, packaged as a diagnostic a user can run on
// their own data: shuffle the summands many times, sum each order with
// plain doubles, and report the distribution of results around the exact
// (HP) answer. A stddev of zero means the data is benign at double
// precision; anything else quantifies how much silent variation a parallel
// schedule could introduce — before it shows up as an irreproducible run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/hp_config.hpp"
#include "trace/trace.hpp"

namespace hpsum::audit {

/// Result of an order-sensitivity study.
struct SensitivityReport {
  std::size_t trials = 0;
  double exact = 0.0;        ///< HP exact sum, rounded once
  double mean = 0.0;         ///< mean of shuffled double sums
  double stddev = 0.0;       ///< spread of shuffled double sums
  double worst_abs_error = 0.0;  ///< max |double sum - exact|
  double naive_error = 0.0;  ///< |unshuffled double sum - exact|
  HpConfig config;           ///< format the audit sized for the data
  /// Telemetry delta across the study (what the exact reduction did: fast-
  /// path deposits, carry chains, status raises). All-zero in
  /// HPSUM_TRACE=OFF builds.
  trace::Snapshot trace_delta;
};

/// Runs the study: `trials` random permutations (deterministic in `seed`),
/// each summed left-to-right in double, compared against the exact HP sum
/// using a format sized from the data itself (hp_plan). Throws
/// std::invalid_argument for non-finite data or unsatisfiable formats.
[[nodiscard]] SensitivityReport order_sensitivity(std::span<const double> xs,
                                                  std::size_t trials = 256,
                                                  std::uint64_t seed = 1);

}  // namespace hpsum::audit
