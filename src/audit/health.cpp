#include "audit/health.hpp"

#include <array>
#include <cstdio>

namespace hpsum::audit {

namespace {

using trace::Counter;

/// One rule: a named numerator/denominator pair over the counter catalog
/// plus thresholds. Numerators may sum several counters (status raises).
struct Rule {
  std::string_view name;
  std::array<Counter, 6> num;  ///< kCount-padded counter list to sum
  std::array<Counter, 2> den;
  double warn_at;
  double fail_at;
  bool higher_is_better;
  /// A codec that was never attached leaves encoded == raw byte-for-byte;
  /// rules with this set report kNotApplicable for the identity ratio
  /// instead of judging a subsystem that wasn't engaged.
  bool na_when_equal = false;
};

constexpr Counter kPad = Counter::kCount;

// The rule catalog (docs/OBSERVABILITY.md documents each indicator;
// tools/hpsum_top.py mirrors these ratios over the pulse stream).
constexpr std::array<Rule, 6> kRules = {{
    // Share of deposits that took the paper's scatter fast path. Low
    // coverage means the workload is falling back to convert+add.
    {"scatter.fast_path_coverage",
     {Counter::kScatterAddCalls, kPad, kPad, kPad, kPad, kPad},
     {Counter::kScatterAddCalls, Counter::kReferenceAddCalls},
     /*warn_at=*/0.50, /*fail_at=*/0.20, /*higher_is_better=*/true},
    // Share of block-path deposits that ran in SIMD lanes. Punts and
    // scalar fallbacks erode the PR 7 speedup.
    {"simd.vector_coverage",
     {Counter::kBlockSimdDeposits, kPad, kPad, kPad, kPad, kPad},
     {Counter::kBlockDeposits, kPad},
     /*warn_at=*/0.50, /*fail_at=*/0.20, /*higher_is_better=*/true},
    // Failed CAS attempts per add on the shared accumulator. Sustained
    // contention says the deposit streams need more shards.
    {"atomic.cas_retry_rate",
     {Counter::kAtomicCasRetries, kPad, kPad, kPad, kPad, kPad},
     {Counter::kAtomicCasAdds, kPad},
     /*warn_at=*/0.50, /*fail_at=*/2.00, /*higher_is_better=*/false},
    // Sticky-status raises per deposit: how often the exactness contract
    // had to flag information loss (any HpStatus bit).
    {"status.raise_rate",
     {Counter::kStatusConvertOverflow, Counter::kStatusAddOverflow,
      Counter::kStatusToDoubleOverflow, Counter::kStatusInexact,
      Counter::kStatusToDoubleInexact, Counter::kStatusInvalidOp},
     {Counter::kScatterAddCalls, Counter::kReferenceAddCalls},
     /*warn_at=*/0.25, /*fail_at=*/0.75, /*higher_is_better=*/false},
    // Encoded/raw collective payload bytes. The sparse codec's CI gate
    // demands <= 1/3; identity (codec never attached) is N/A.
    {"mpisim.wire_compression",
     {Counter::kMpisimWireEncodedBytes, kPad, kPad, kPad, kPad, kPad},
     {Counter::kMpisimWireRawBytes, kPad},
     /*warn_at=*/0.50, /*fail_at=*/0.90, /*higher_is_better=*/false,
     /*na_when_equal=*/true},
    // Torn-shard re-reads per engine snapshot. Sustained retries mean
    // readers keep colliding with publishes — snapshot consumers should
    // back off, or depositors should batch (fewer epoch bumps).
    {"snapshot.retry_rate",
     {Counter::kEngineSnapshotRetries, kPad, kPad, kPad, kPad, kPad},
     {Counter::kEngineSnapshots, kPad},
     /*warn_at=*/0.50, /*fail_at=*/2.00, /*higher_is_better=*/false},
}};

std::uint64_t sum_counters(const trace::Snapshot& snap,
                           const std::array<Counter, 6>& cs) {
  std::uint64_t total = 0;
  for (const Counter c : cs) {
    if (c != kPad) total += snap.value(c);
  }
  return total;
}

std::uint64_t sum_counters(const trace::Snapshot& snap,
                           const std::array<Counter, 2>& cs) {
  std::uint64_t total = 0;
  for (const Counter c : cs) {
    if (c != kPad) total += snap.value(c);
  }
  return total;
}

HealthLevel judge(const Rule& rule, double ratio) {
  if (rule.higher_is_better) {
    if (ratio >= rule.warn_at) return HealthLevel::kOk;
    return ratio >= rule.fail_at ? HealthLevel::kWarn : HealthLevel::kFail;
  }
  if (ratio <= rule.warn_at) return HealthLevel::kOk;
  return ratio <= rule.fail_at ? HealthLevel::kWarn : HealthLevel::kFail;
}

/// kFail > kWarn > kOk > kNotApplicable for the overall roll-up.
int severity(HealthLevel level) {
  switch (level) {
    case HealthLevel::kFail: return 3;
    case HealthLevel::kWarn: return 2;
    case HealthLevel::kOk: return 1;
    case HealthLevel::kNotApplicable: return 0;
  }
  return 0;
}

std::string format_ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string_view to_string(HealthLevel level) noexcept {
  switch (level) {
    case HealthLevel::kOk: return "ok";
    case HealthLevel::kWarn: return "warn";
    case HealthLevel::kFail: return "fail";
    case HealthLevel::kNotApplicable: return "n/a";
  }
  return "n/a";
}

std::size_t health_rule_count() noexcept { return kRules.size(); }

HealthReport evaluate_health(const trace::Snapshot& snap) {
  HealthReport report;
  report.indicators.reserve(kRules.size());
  for (const Rule& rule : kRules) {
    HealthIndicator ind;
    ind.name = rule.name;
    ind.numerator = sum_counters(snap, rule.num);
    ind.denominator = sum_counters(snap, rule.den);
    ind.warn_at = rule.warn_at;
    ind.fail_at = rule.fail_at;
    ind.higher_is_better = rule.higher_is_better;
    const bool na = ind.denominator == 0 ||
                    (rule.na_when_equal && ind.numerator == ind.denominator);
    if (na) {
      ind.level = HealthLevel::kNotApplicable;
    } else {
      ind.ratio = static_cast<double>(ind.numerator) /
                  static_cast<double>(ind.denominator);
      ind.level = judge(rule, ind.ratio);
    }
    if (severity(ind.level) > severity(report.overall)) {
      report.overall = ind.level;
    }
    report.indicators.push_back(ind);
  }
  return report;
}

std::optional<HealthIndicator> find_indicator(const HealthReport& report,
                                              std::string_view name) noexcept {
  for (const HealthIndicator& ind : report.indicators) {
    if (ind.name == name) return ind;
  }
  return std::nullopt;
}

std::string health_report_json(const HealthReport& report) {
  std::string out = "{\n  \"hpsum_health\": 1,\n  \"overall\": \"";
  out += to_string(report.overall);
  out += "\",\n  \"indicators\": [\n";
  for (std::size_t i = 0; i < report.indicators.size(); ++i) {
    const HealthIndicator& ind = report.indicators[i];
    out += "    {\"name\": \"";
    out += ind.name;
    out += "\", \"level\": \"";
    out += to_string(ind.level);
    out += "\", \"ratio\": ";
    out += format_ratio(ind.ratio);
    out += ", \"numerator\": ";
    out += std::to_string(ind.numerator);
    out += ", \"denominator\": ";
    out += std::to_string(ind.denominator);
    out += ", \"warn_at\": ";
    out += format_ratio(ind.warn_at);
    out += ", \"fail_at\": ";
    out += format_ratio(ind.fail_at);
    out += ", \"higher_is_better\": ";
    out += ind.higher_is_better ? "true" : "false";
    out += "}";
    out += i + 1 < report.indicators.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string health_report_json() {
  return health_report_json(evaluate_health(trace::snapshot()));
}

}  // namespace hpsum::audit
