#include "audit/audit.hpp"

#include <cmath>
#include <vector>

#include "core/hp_dyn.hpp"
#include "core/hp_plan.hpp"
#include "core/reduce.hpp"
#include "stats/stats.hpp"
#include "workload/workload.hpp"

namespace hpsum::audit {

SensitivityReport order_sensitivity(std::span<const double> xs,
                                    std::size_t trials, std::uint64_t seed) {
  SensitivityReport report;
  report.trials = trials;
  const trace::Snapshot before = trace::snapshot();
  report.config = suggest_config(plan_for_data(xs));

  const HpDyn exact_hp = reduce_hp(xs, report.config);
  report.exact = exact_hp.to_double();
  report.naive_error = std::fabs(reduce_double(xs) - report.exact);

  std::vector<double> scratch(xs.begin(), xs.end());
  stats::RunningStats rs;
  for (std::size_t t = 0; t < trials; ++t) {
    workload::shuffle(scratch, seed + t * 0x9E3779B97F4A7C15ull);
    const double s = reduce_double(scratch);
    rs.add(s);
    const double err = std::fabs(s - report.exact);
    if (err > report.worst_abs_error) report.worst_abs_error = err;
  }
  report.mean = rs.mean();
  report.stddev = rs.stddev();
  report.trace_delta = trace::snapshot().delta_since(before);
  return report;
}

}  // namespace hpsum::audit
