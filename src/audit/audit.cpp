#include "audit/audit.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/hp_dyn.hpp"
#include "core/hp_plan.hpp"
#include "core/reduce.hpp"
#include "stats/stats.hpp"
#include "trace/flight.hpp"
#include "workload/workload.hpp"

namespace hpsum::audit {

SensitivityReport order_sensitivity(std::span<const double> xs,
                                    std::size_t trials, std::uint64_t seed) {
  SensitivityReport report;
  report.trials = trials;
  const trace::Snapshot before = trace::snapshot();
  report.config = suggest_config(plan_for_data(xs));

  const HpDyn exact_hp = reduce_hp(xs, report.config);
  report.exact = exact_hp.to_double();
  report.naive_error = std::fabs(reduce_double(xs) - report.exact);

  std::vector<double> scratch(xs.begin(), xs.end());
  stats::RunningStats rs;
  for (std::size_t t = 0; t < trials; ++t) {
    workload::shuffle(scratch, seed + t * 0x9E3779B97F4A7C15ull);
    const double s = reduce_double(scratch);
    rs.add(s);
    const double err = std::fabs(s - report.exact);
    if (err > report.worst_abs_error) report.worst_abs_error = err;
  }
  report.mean = rs.mean();
  report.stddev = rs.stddev();
  report.trace_delta = trace::snapshot().delta_since(before);
  return report;
}

DivergenceReport compare_limbs(std::string_view label_a, util::ConstLimbSpan a,
                               HpStatus status_a, std::string_view label_b,
                               util::ConstLimbSpan b, HpStatus status_b) {
  DivergenceReport report;
  report.label_a.assign(label_a);
  report.label_b.assign(label_b);
  report.limbs_a.assign(a.begin(), a.end());
  report.limbs_b.assign(b.begin(), b.end());
  report.status_a = status_a;
  report.status_b = status_b;

  const std::size_t common = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) {
      report.limb_index = i;
      report.diverged = true;
      break;
    }
  }
  if (a.size() != b.size() || status_a != status_b) report.diverged = true;
  return report;
}

namespace {

/// Minimal JSON string escaping for labels and env values.
void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_side(std::string& out, const char* key, std::string_view label,
                 const std::vector<util::Limb>& limbs, HpStatus status) {
  out += "  \"";
  out += key;
  out += "\": {\"label\": \"";
  append_escaped(out, label);
  out += "\", \"limb_count\": ";
  out += std::to_string(limbs.size());
  out += ", \"limbs_hex\": \"";
  append_escaped(out, util::to_hex({limbs.data(), limbs.size()}));
  out += "\", \"status\": \"";
  append_escaped(out, to_string(status));
  out += "\", \"status_mask\": ";
  out += std::to_string(static_cast<unsigned>(status));
  out += "}";
}

void append_env_var(std::string& out, const char* name, bool& first) {
  const char* v = std::getenv(name);
  if (v == nullptr) return;
  if (!first) out += ", ";
  first = false;
  out += '"';
  out += name;
  out += "\": \"";
  append_escaped(out, v);
  out += '"';
}

}  // namespace

std::string forensic_bundle_json(const DivergenceReport& report,
                                 std::size_t last_k_events) {
  std::string out = "{\n  \"hpsum_forensic\": 1,\n  \"diverged\": ";
  out += report.diverged ? "true" : "false";
  out += ",\n  \"first_divergent_limb\": ";
  // SIZE_MAX (no limb-level mismatch) exports as null: the divergence, if
  // any, is status-only or a limb-count mismatch.
  if (report.limb_index == SIZE_MAX) {
    out += "null";
  } else {
    out += std::to_string(report.limb_index);
  }
  out += ",\n  \"limb_order\": \"most_significant_first\",\n";
  append_side(out, "a", report.label_a, report.limbs_a, report.status_a);
  out += ",\n";
  append_side(out, "b", report.label_b, report.limbs_b, report.status_b);
  out += ",\n  \"environment\": {\"compiler\": \"";
  append_escaped(out, __VERSION__);
  out += "\", \"trace_enabled\": ";
  out += trace::enabled() ? "true" : "false";
  out += ", \"flight_armed\": ";
  out += trace::flight::armed() ? "true" : "false";
  out += ", \"hardware_concurrency\": ";
  out += std::to_string(std::thread::hardware_concurrency());
  out += ", \"env\": {";
  bool first_env = true;
  append_env_var(out, "HPSUM_FLIGHT", first_env);
  append_env_var(out, "HPSUM_FULL", first_env);
  append_env_var(out, "OMP_NUM_THREADS", first_env);
  out += "}},\n  \"flight_events\": [\n";

  const std::vector<trace::flight::ThreadEvents> threads =
      trace::flight::collect(last_k_events);
  bool first_thread = true;
  for (const trace::flight::ThreadEvents& te : threads) {
    if (!first_thread) out += ",\n";
    first_thread = false;
    out += "    {\"track\": \"";
    append_escaped(out, te.track.label);
    out += "\", \"pid\": ";
    out += std::to_string(te.track.pid);
    out += ", \"tid\": ";
    out += std::to_string(te.track.tid);
    out += ", \"events\": [";
    bool first_event = true;
    for (const trace::flight::Event& e : te.events) {
      if (!first_event) out += ", ";
      first_event = false;
      out += "{\"name\": \"";
      out += trace::flight::event_name(
          static_cast<trace::flight::EventId>(e.id));
      out += "\", \"phase\": ";
      out += std::to_string(e.phase);
      out += ", \"ts_ns\": ";
      out += std::to_string(e.ts_ns);
      out += ", \"arg0\": ";
      out += std::to_string(e.arg0);
      out += ", \"arg1\": ";
      out += std::to_string(e.arg1);
      out += '}';
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool write_forensic_bundle(const std::string& path,
                           const DivergenceReport& report,
                           std::size_t last_k_events) {
  const std::string json = forensic_bundle_json(report, last_k_events);
  if (path.empty() || path == "-") {
    std::fputs(json.c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return n == json.size();
}

}  // namespace hpsum::audit
