#include "engine/engine.hpp"

#include <cstdint>

namespace hpsum::engine {
namespace {

// Engine checkpoint container header (docs/FORMAT.md §engine checkpoint):
// 'H' 'E' version reserved, then a u32 LE frame count. Frames follow as
// u32 LE payload size + one canonical serialized HP image each. The
// container deliberately carries no shard-count semantics beyond the
// frame list — restore() redistributes frames over whatever lanes the
// receiving set has, which is what makes cross-shape restore exact.
constexpr std::byte kMagic0{'H'};
constexpr std::byte kMagic1{'E'};
constexpr std::byte kVersion{1};
constexpr std::size_t kHeaderSize = 8;

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xff));
  out.push_back(static_cast<std::byte>((v >> 16) & 0xff));
  out.push_back(static_cast<std::byte>((v >> 24) & 0xff));
}

[[nodiscard]] std::uint32_t get_u32(std::span<const std::byte> b) noexcept {
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

}  // namespace

std::vector<std::byte> frame_checkpoint(const std::vector<HpDyn>& frames) {
  std::size_t payload = 0;
  for (const HpDyn& f : frames) payload += 4 + serialized_size(f.config());
  std::vector<std::byte> out;
  out.reserve(kHeaderSize + payload);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kVersion);
  out.push_back(std::byte{0});  // reserved
  put_u32(out, static_cast<std::uint32_t>(frames.size()));
  for (const HpDyn& f : frames) {
    const std::vector<std::byte> image = serialize(f);
    put_u32(out, static_cast<std::uint32_t>(image.size()));
    out.insert(out.end(), image.begin(), image.end());
  }
  return out;
}

std::vector<HpDyn> unframe_checkpoint(std::span<const std::byte> bytes) {
  if (bytes.size() < kHeaderSize) {
    throw std::invalid_argument("engine checkpoint: truncated header");
  }
  if (bytes[0] != kMagic0 || bytes[1] != kMagic1) {
    throw std::invalid_argument("engine checkpoint: bad magic");
  }
  if (bytes[2] != kVersion) {
    throw std::invalid_argument("engine checkpoint: unsupported version");
  }
  const std::uint32_t count = get_u32(bytes.subspan(4));
  std::vector<HpDyn> frames;
  frames.reserve(count);
  std::size_t off = kHeaderSize;
  for (std::uint32_t j = 0; j < count; ++j) {
    if (bytes.size() - off < 4) {
      throw std::invalid_argument("engine checkpoint: truncated frame size");
    }
    const std::uint32_t fsize = get_u32(bytes.subspan(off));
    off += 4;
    if (bytes.size() - off < fsize) {
      throw std::invalid_argument("engine checkpoint: truncated frame");
    }
    frames.push_back(deserialize(bytes.subspan(off, fsize)));
    off += fsize;
  }
  if (off != bytes.size()) {
    throw std::invalid_argument("engine checkpoint: trailing bytes");
  }
  return frames;
}

HpDyn local_reduce(std::span<const double> xs, HpConfig cfg) {
  ShardSet<DynSum> sink(1, DynSum(cfg));
  sink.shard(0).deposit(xs);
  return sink.drain().hp;
}

}  // namespace hpsum::engine
