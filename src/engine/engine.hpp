// hpsum::engine — the streaming-accumulation runtime: sharded deposit
// sinks with epoch-based exact snapshots and checkpoint/restore.
//
// Every parallel consumer in this repo used to hand-roll the same shape:
// give each PE a private partial accumulator, run, then merge the partials
// in a fixed order. That pattern is correct but offline — nothing can
// observe the running total without first stopping every writer. The
// paper's order-invariance guarantee is exactly what makes a *live* exact
// total possible: HP addition is associative and commutative at the bit
// level, so shard partials merged at any epoch boundary, in any order,
// produce the same limbs and the same sticky status as the sequential
// reference. ShardSet<Acc> owns that pattern once:
//
//   - thread-affine shards: each depositor writes its own cache-line-
//     padded slot; no locks, no contention on the deposit path.
//   - epoch-based snapshot(): depositors publish their partial behind a
//     per-shard seqlock (odd epoch = write in flight). A reader copies the
//     published words, re-checks the epoch, and retries torn shards — the
//     same tear-free discipline as trace::snapshot(), generalized from one
//     64-bit word to a whole limb image.
//   - drain()/reset() lifecycle for the classic join-then-merge drivers
//     (backends::run_threads / run_openmp, rblas::sum_parallel, the
//     mpisim per-rank local phase, the cudasim/phisim host folds).
//   - checkpoint()/restore() over the pinned docs/FORMAT.md canonical
//     serialization with per-shard framing, so a checkpoint taken on S
//     shards restores onto any shard count (frames are redistributed
//     round-robin; exactness makes the regrouping bit-invisible).
//
// Memory-model notes (the part TSan cares about):
//   Writer (publish):  epoch.store(e+1, relaxed); fence(release);
//                      word stores (relaxed); epoch.store(e+2, release).
//   Reader (collect):  e1 = epoch.load(acquire); word loads (relaxed);
//                      fence(acquire); e2 = epoch.load(relaxed);
//                      accept iff e1 == e2 and e1 is even.
//   The release fence pairs with the reader's acquire fence through any
//   word the reader observed, so a reader that saw mid-write data cannot
//   also see a stale even epoch. All shared state is atomic; the working
//   accumulator itself is written only by the owning depositor thread.
//
//   TSan builds express the same edges per word instead: GCC's TSan does
//   not model atomic_thread_fence (-Wtsan, promoted by -Werror), so the
//   fences become no-ops and the word traffic is strengthened to release
//   stores / acquire loads. That variant is independently correct — the
//   release word stores keep the odd-epoch store ahead of the image and
//   the acquire word loads keep the confirming epoch re-read behind it —
//   it just pays an ordered access per word, which the uninstrumented
//   build avoids.
//
// docs/ENGINE.md documents the lifecycle, protocol, and wire framing;
// this layer is what the ROADMAP item 1 hpsum_serve service mounts on.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/hp_dyn.hpp"
#include "core/hp_serialize.hpp"
#include "trace/trace.hpp"

// Detect a ThreadSanitizer build (GCC defines __SANITIZE_THREAD__; clang
// answers __has_feature(thread_sanitizer)).
#if defined(__SANITIZE_THREAD__)
#define HPSUM_ENGINE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HPSUM_ENGINE_TSAN 1
#endif
#endif
#ifndef HPSUM_ENGINE_TSAN
#define HPSUM_ENGINE_TSAN 0
#endif

namespace hpsum::engine {

// Seqlock ordering knobs — see the memory-model notes above. Word
// accesses are relaxed and the fences are real in normal builds; under
// TSan the ordering moves onto the words and the fences vanish.
#if HPSUM_ENGINE_TSAN
inline constexpr std::memory_order kWordStoreOrder =
    std::memory_order_release;
inline constexpr std::memory_order kWordLoadOrder = std::memory_order_acquire;
inline void publish_fence() noexcept {}
inline void observe_fence() noexcept {}
#else
inline constexpr std::memory_order kWordStoreOrder =
    std::memory_order_relaxed;
inline constexpr std::memory_order kWordLoadOrder = std::memory_order_relaxed;
inline void publish_fence() noexcept {
  std::atomic_thread_fence(std::memory_order_release);
}
inline void observe_fence() noexcept {
  std::atomic_thread_fence(std::memory_order_acquire);
}
#endif

/// Runtime-format HP accumulator satisfying the backends::accumulators
/// concept shape. The compile-time backends::HpSum<N,K> is the right lane
/// type when the format is known at build time; DynSum carries the format
/// chosen by hp_plan at runtime (exact_sum_cli, the mpisim local phase).
struct DynSum {
  HpDyn hp;

  explicit DynSum(HpConfig cfg) : hp(cfg) {}
  void accumulate(double x) noexcept { hp += x; }
  void accumulate(std::span<const double> xs) noexcept { hp.accumulate(xs); }
  void merge(const DynSum& o) { hp += o.hp; }
  [[nodiscard]] double result() const noexcept { return hp.to_double(); }
  [[nodiscard]] static std::string name() { return "HP(dyn)"; }
};

/// Accumulators whose state is an HP value (limbs + sticky status). These
/// are the ones checkpoint()/restore() can frame over the canonical
/// docs/FORMAT.md serialization: backends::HpSum<N,K> (HpFixed) and
/// DynSum (HpDyn) both qualify; DoubleSum/HallbergSum do not.
template <class A>
concept HpBacked = requires(const A a) {
  { a.hp.config() };
  { a.hp.status() };
  a.hp.limbs();
};

/// Extracts a shard partial as a self-describing HpDyn (limbs + status).
template <HpBacked A>
[[nodiscard]] HpDyn to_dyn(const A& a) {
  const HpConfig cfg = a.hp.config();
  HpDyn out(cfg);
  const auto src = a.hp.limbs();
  auto dst = out.limbs();
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src[i];
  out.or_status(a.hp.status());
  return out;
}

/// Merges a checkpoint frame back into an accumulator. Throws
/// std::invalid_argument when the frame's format does not match the
/// accumulator's — restore never silently reinterprets limbs.
template <HpBacked A>
void add_dyn(A& a, const HpDyn& v) {
  using Hp = std::remove_cvref_t<decltype(std::declval<A&>().hp)>;
  if constexpr (std::is_same_v<Hp, HpDyn>) {
    a.hp += v;  // HpDyn::operator+= validates the format itself
  } else {
    if (v.config() != a.hp.config()) {
      throw std::invalid_argument("engine: checkpoint frame format " +
                                  std::to_string(v.config().n) + "/" +
                                  std::to_string(v.config().k) +
                                  " does not match shard format");
    }
    Hp tmp;
    auto& dst = tmp.limbs();
    const auto src = v.limbs();
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
    tmp.or_status(v.status());
    a.hp += tmp;
  }
}

/// Fixed-width publication codec: how a shard's working accumulator is
/// staged into the seqlock-protected word array. The default covers every
/// trivially copyable accumulator (DoubleSum, HpSum, HallbergSum) by
/// treating the object representation as words. A codec must be
/// value-preserving: load(store(acc)) compares equal in limbs and status.
template <class Acc>
struct ShardCodec {
  static_assert(std::is_trivially_copyable_v<Acc>,
                "non-trivially-copyable accumulators need a ShardCodec "
                "specialization (see ShardCodec<DynSum>)");

  [[nodiscard]] static std::size_t words(const Acc& /*proto*/) noexcept {
    return (sizeof(Acc) + 7) / 8;
  }
  static void store(const Acc& acc, std::uint64_t* w) noexcept {
    unsigned char raw[sizeof(Acc)];
    std::memcpy(raw, &acc, sizeof(Acc));
    std::uint64_t last = 0;
    const std::size_t full = sizeof(Acc) / 8;
    std::memcpy(w, raw, full * 8);
    if (sizeof(Acc) % 8 != 0) {
      std::memcpy(&last, raw + full * 8, sizeof(Acc) % 8);
      w[full] = last;
    }
  }
  static void load(Acc& out, const std::uint64_t* w) noexcept {
    unsigned char raw[sizeof(Acc)];
    const std::size_t full = sizeof(Acc) / 8;
    std::memcpy(raw, w, full * 8);
    if (sizeof(Acc) % 8 != 0) {
      std::memcpy(raw + full * 8, &w[full], sizeof(Acc) % 8);
    }
    std::memcpy(&out, raw, sizeof(Acc));
  }
};

/// DynSum holds an HpDyn (heap-backed limb vector), so its published image
/// is the limbs followed by one status word; load() targets an
/// accumulator pre-shaped from the set's prototype.
template <>
struct ShardCodec<DynSum> {
  [[nodiscard]] static std::size_t words(const DynSum& proto) noexcept {
    return static_cast<std::size_t>(proto.hp.config().n) + 1;
  }
  static void store(const DynSum& acc, std::uint64_t* w) noexcept {
    const auto ls = acc.hp.limbs();
    for (std::size_t i = 0; i < ls.size(); ++i) w[i] = ls[i];
    w[ls.size()] = static_cast<std::uint64_t>(acc.hp.status());
  }
  static void load(DynSum& out, const std::uint64_t* w) noexcept {
    auto ls = out.hp.limbs();
    for (std::size_t i = 0; i < ls.size(); ++i) ls[i] = w[i];
    out.hp.clear_status();
    out.hp.or_status(static_cast<HpStatus>(w[ls.size()] & kHpStatusMask));
  }
};

/// Destructive-interference padding for the per-shard slots. Not
/// hardware_destructive_interference_size: that constant is ABI-fragile
/// across compilers and 64 is correct for every target this repo builds.
inline constexpr std::size_t kShardAlign = 64;

/// Engine checkpoint wire framing over canonical HP images ("HE" header +
/// length-prefixed docs/FORMAT.md frames; see docs/FORMAT.md §engine).
/// Exposed for tests and for hpsum_serve's future checkpoint shipping.
[[nodiscard]] std::vector<std::byte> frame_checkpoint(
    const std::vector<HpDyn>& frames);
/// Inverse of frame_checkpoint. Throws std::invalid_argument on bad
/// magic/version, truncation, trailing bytes, or corrupt frames.
[[nodiscard]] std::vector<HpDyn> unframe_checkpoint(
    std::span<const std::byte> bytes);

/// A sharded deposit sink over any backends::accumulators-shaped Acc.
///
/// Construction pre-registers `lanes` permanent shards (the classic
/// driver shape: lane t belongs to PE t). register_shard() adds dynamic
/// shards at runtime; retiring the returned Handle folds that shard's
/// partial into a retired total that every later snapshot still includes
/// (the trace-registry lifecycle, applied to values).
///
/// Thread contract:
///   - shard(i) deposits: exclusively the lane's owning thread.
///   - snapshot()/checkpoint(): any thread, any time, writers running.
///   - drain()/reset()/restore(): writers quiesced (joined or otherwise
///     happens-before ordered), exactly like trace::reset().
template <class Acc, class Codec = ShardCodec<Acc>>
class ShardSet {
  struct alignas(kShardAlign) Slot {
    explicit Slot(const Acc& proto, std::size_t nwords)
        : acc(proto), words(std::make_unique<std::atomic<std::uint64_t>[]>(
                          nwords)) {}
    /// Working accumulator — written only by the owning depositor thread,
    /// read directly only under the quiesced-writer contract.
    Acc acc;
    /// Seqlock epoch: even = published image consistent, odd = publish in
    /// flight. Monotone; one publish advances it by exactly 2.
    std::atomic<std::uint64_t> epoch{0};
    /// The published image (Codec words). Individually relaxed-atomic so
    /// concurrent readers are race-free; consistency comes from `epoch`.
    std::unique_ptr<std::atomic<std::uint64_t>[]> words;
  };

 public:
  /// A depositor's view of one shard. Cheap to copy; valid as long as the
  /// owning ShardSet (or, for dynamic shards, the Handle) is alive.
  class Shard {
   public:
    /// Deposits one value and publishes. Per-call publication is what
    /// gives snapshot() deposit-boundary granularity.
    void deposit(double x) noexcept {
      slot_->acc.accumulate(x);
      publish();
    }
    /// Deposits a block and publishes once — the driver fast path (one
    /// epoch bump amortized over the whole slice).
    void deposit(std::span<const double> xs) noexcept {
      slot_->acc.accumulate(xs);
      publish();
    }
    /// Merges an externally accumulated partial (the cudasim host fold
    /// absorbs per-block device partials this way) and publishes.
    void absorb(const Acc& partial) {
      slot_->acc.merge(partial);
      publish();
    }

   private:
    friend class ShardSet;
    friend class Handle;  // friendship does not reach nested classes
    Shard(Slot* slot, std::size_t words) : slot_(slot), words_(words) {}

    void publish() noexcept {
      Slot& s = *slot_;
      const std::uint64_t e = s.epoch.load(std::memory_order_relaxed);
      s.epoch.store(e + 1, std::memory_order_relaxed);
      publish_fence();
      std::uint64_t staged[kMaxLimbs + 1];
      std::uint64_t* heap = nullptr;
      std::uint64_t* buf = staged;
      if (words_ > static_cast<std::size_t>(kMaxLimbs) + 1) {
        // oversized custom Acc: stage on heap
        heap = new std::uint64_t[words_];
        buf = heap;
      }
      Codec::store(s.acc, buf);
      for (std::size_t i = 0; i < words_; ++i) {
        // hplint: allow(memory-order) — kWordStoreOrder IS the explicit
        // order (relaxed, or release under TSan; see the knobs above)
        s.words[i].store(buf[i], kWordStoreOrder);
      }
      delete[] heap;
      s.epoch.store(e + 2, std::memory_order_release);
    }

    Slot* slot_;
    std::size_t words_;
  };

  /// RAII registration of a dynamic shard; destruction retires it (folds
  /// the partial into the set's retired total under the registry lock).
  class Handle {
   public:
    Handle(Handle&& o) noexcept
        : set_(std::exchange(o.set_, nullptr)),
          slot_(std::exchange(o.slot_, nullptr)) {}
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        release();
        set_ = std::exchange(o.set_, nullptr);
        slot_ = std::exchange(o.slot_, nullptr);
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

    [[nodiscard]] Shard shard() const noexcept {
      return Shard(slot_, set_->words_per_shard_);
    }

   private:
    friend class ShardSet;
    Handle(ShardSet* set, Slot* slot) : set_(set), slot_(slot) {}
    void release() noexcept {
      if (set_ != nullptr) set_->retire(slot_);
      set_ = nullptr;
      slot_ = nullptr;
    }

    ShardSet* set_ = nullptr;
    Slot* slot_ = nullptr;
  };

  /// Creates the set with `lanes` permanent shards, each starting as a
  /// copy of `proto` (the zero value; DynSum protos carry the runtime
  /// format, e.g. `ShardSet<DynSum>(p, DynSum(cfg))`).
  explicit ShardSet(std::size_t lanes, Acc proto = Acc())
      : proto_(std::move(proto)),
        retired_(proto_),
        words_per_shard_(Codec::words(proto_)) {
    if (lanes == 0) {
      throw std::invalid_argument("engine: ShardSet needs >= 1 lane");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < lanes; ++i) add_slot_locked();
    lanes_ = lanes;
  }

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  /// Permanent lane count (dynamic shards come and go on top of these).
  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }

  /// Depositor view of permanent lane `i` — each lane must be driven by
  /// at most one thread at a time.
  [[nodiscard]] Shard shard(std::size_t i) {
    if (i >= lanes_) throw std::out_of_range("engine: lane out of range");
    return Shard(slots_[i].get(), words_per_shard_);
  }

  /// Adds a dynamic shard. Thread-safe; the depositing thread should keep
  /// the Handle for its lifetime and drop it to retire.
  [[nodiscard]] Handle register_shard() {
    std::lock_guard<std::mutex> lock(mutex_);
    Slot* slot = add_slot_locked();
    return Handle(this, slot);
  }

  /// Bit-exact merged total while depositors keep running. Merge order is
  /// retired total first (skipped while nothing retired), then live
  /// shards in registration order — for the join-then-merge drivers this
  /// reproduces the historical `for (t) total.merge(partials[t])` loop
  /// exactly, so limbs and status are bit-identical to the direct path.
  [[nodiscard]] Acc snapshot() const {
    const auto t0 = std::chrono::steady_clock::now();
    Acc total = proto_;
    std::uint64_t retries = 0;
    std::vector<std::uint64_t> buf(words_per_shard_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (has_retired_) total.merge(retired_);
      Acc tmp = proto_;
      for (const auto& slot : slots_) {
        collect(*slot, buf.data(), retries);
        Codec::load(tmp, buf.data());
        total.merge(tmp);
      }
    }
    trace::count(trace::Counter::kEngineSnapshots);
    trace::count(trace::Counter::kEngineSnapshotRetries, retries);
    const auto dt = std::chrono::steady_clock::now() - t0;
    trace::observe(
        trace::Hist::kEngineSnapshotLatencyUs,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(dt)
                .count()));
    return total;
  }

  /// Merged total + reset, for the classic join-then-merge drivers.
  /// Writers must be quiesced; reads the working accumulators directly
  /// (the join provides the happens-before edge), so the merged value is
  /// literally the partials the depositor threads produced.
  [[nodiscard]] Acc drain() {
    Acc total = proto_;
    std::lock_guard<std::mutex> lock(mutex_);
    if (has_retired_) total.merge(retired_);
    for (const auto& slot : slots_) total.merge(slot->acc);
    reset_locked();
    bump_snapshot_counters_locked();
    return total;
  }

  /// Clears every live shard and the retired total back to the prototype
  /// zero. Writers must be quiesced.
  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    reset_locked();
  }

  /// Serializes the retired total plus every live shard as one canonical
  /// frame each (docs/FORMAT.md §engine checkpoint). Safe while
  /// depositors run — shard images are collected through the seqlock.
  [[nodiscard]] std::vector<std::byte> checkpoint() const
    requires HpBacked<Acc>
  {
    std::vector<HpDyn> frames;
    std::uint64_t retries = 0;
    std::vector<std::uint64_t> buf(words_per_shard_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      frames.reserve(slots_.size() + 1);
      frames.push_back(to_dyn(retired_));
      Acc tmp = proto_;
      for (const auto& slot : slots_) {
        collect(*slot, buf.data(), retries);
        Codec::load(tmp, buf.data());
        frames.push_back(to_dyn(tmp));
      }
    }
    trace::count(trace::Counter::kEngineSnapshots);
    trace::count(trace::Counter::kEngineSnapshotRetries, retries);
    return frame_checkpoint(frames);
  }

  /// Merges a checkpoint into this set, redistributing frames across the
  /// permanent lanes round-robin — a checkpoint taken on any shard count
  /// restores onto any other, and exactness makes the regrouping
  /// invisible in the final total. Writers must be quiesced; call on a
  /// freshly constructed (or reset) set for an exact resume. Throws
  /// std::invalid_argument on malformed bytes or format mismatch.
  void restore(std::span<const std::byte> bytes)
    requires HpBacked<Acc>
  {
    const std::vector<HpDyn> frames = unframe_checkpoint(bytes);
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t j = 0; j < frames.size(); ++j) {
      Slot& slot = *slots_[j % lanes_];
      add_dyn(slot.acc, frames[j]);
      republish_locked(slot);
    }
  }

 private:
  Slot* add_slot_locked() {
    slots_.push_back(std::make_unique<Slot>(proto_, words_per_shard_));
    Slot& slot = *slots_.back();
    republish_locked(slot);
    trace::count(trace::Counter::kEngineShardsRegistered);
    return &slot;
  }

  /// Folds a dynamic shard's partial into the retired total and drops the
  /// slot. Runs on the depositor thread (Handle destruction), so reading
  /// `acc` directly is single-owner.
  void retire(Slot* slot) noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    retired_.merge(slot->acc);
    has_retired_ = true;
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->get() == slot) {
        slots_.erase(it);
        break;
      }
    }
    trace::count(trace::Counter::kEngineShardsRetired);
  }

  /// Seqlock collect of one slot's published words into `buf`.
  void collect(const Slot& slot, std::uint64_t* buf,
               std::uint64_t& retries) const noexcept {
    for (std::uint64_t spin = 0;; ++spin) {
      const std::uint64_t e1 = slot.epoch.load(std::memory_order_acquire);
      if ((e1 & 1) == 0) {
        for (std::size_t i = 0; i < words_per_shard_; ++i) {
          // hplint: allow(memory-order) — kWordLoadOrder IS the explicit
          // order (relaxed, or acquire under TSan)
          buf[i] = slot.words[i].load(kWordLoadOrder);
        }
        observe_fence();
        if (slot.epoch.load(std::memory_order_relaxed) == e1) return;
      }
      ++retries;
      if (spin >= 64) std::this_thread::yield();
    }
  }

  /// Rewrites a slot's published image from its working accumulator.
  /// Caller holds the registry mutex and writers are quiesced (or the
  /// slot is not yet visible to any depositor).
  void republish_locked(Slot& slot) noexcept {
    const std::uint64_t e = slot.epoch.load(std::memory_order_relaxed);
    slot.epoch.store(e + 1, std::memory_order_relaxed);
    publish_fence();
    std::vector<std::uint64_t> buf(words_per_shard_);
    Codec::store(slot.acc, buf.data());
    for (std::size_t i = 0; i < words_per_shard_; ++i) {
      // hplint: allow(memory-order) — kWordStoreOrder IS the explicit
      // order (relaxed, or release under TSan)
      slot.words[i].store(buf[i], kWordStoreOrder);
    }
    slot.epoch.store(e + 2, std::memory_order_release);
  }

  void reset_locked() noexcept {
    for (const auto& slot : slots_) {
      slot->acc = proto_;
      republish_locked(*slot);
    }
    retired_ = proto_;
    has_retired_ = false;
  }

  void bump_snapshot_counters_locked() const noexcept {
    trace::count(trace::Counter::kEngineSnapshots);
  }

  Acc proto_;
  Acc retired_;
  bool has_retired_ = false;
  std::size_t words_per_shard_;
  std::size_t lanes_ = 0;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

/// Engine-routed sequential-reference helper: accumulates `xs` through a
/// single-lane DynSum set and returns the drained partial. Bit-identical
/// (limbs + status) to reduce_hp(xs, cfg); this is the per-rank local
/// phase the mpisim consumers call before entering a collective.
[[nodiscard]] HpDyn local_reduce(std::span<const double> xs, HpConfig cfg);

}  // namespace hpsum::engine
