#include "util/limbs.hpp"

#include <bit>
#include <cstdio>

namespace hpsum::util {

__extension__ using U128 = unsigned __int128;

namespace {
// One full-width add step: *out = x + y + carry_in, returns carry out.
inline bool addc(Limb x, Limb y, bool carry_in, Limb* out) noexcept {
  const Limb s = x + y;
  const bool c1 = s < x;
  const Limb t = s + static_cast<Limb>(carry_in);
  const bool c2 = t < s;
  *out = t;
  return c1 || c2;
}

// One full-width subtract step: *out = x - y - borrow_in, returns borrow out.
inline bool subb(Limb x, Limb y, bool borrow_in, Limb* out) noexcept {
  const Limb d = x - y;
  const bool b1 = x < y;
  const Limb t = d - static_cast<Limb>(borrow_in);
  const bool b2 = d < static_cast<Limb>(borrow_in);
  *out = t;
  return b1 || b2;
}
}  // namespace

bool add_into(LimbSpan a, ConstLimbSpan b) noexcept {
  bool carry = false;
  for (std::size_t i = a.size(); i-- > 0;) {
    carry = addc(a[i], b[i], carry, &a[i]);
  }
  return carry;
}

bool sub_into(LimbSpan a, ConstLimbSpan b) noexcept {
  bool borrow = false;
  for (std::size_t i = a.size(); i-- > 0;) {
    borrow = subb(a[i], b[i], borrow, &a[i]);
  }
  return borrow;
}

bool increment(LimbSpan a) noexcept {
  for (std::size_t i = a.size(); i-- > 0;) {
    if (++a[i] != 0) return false;
  }
  return true;
}

void negate_twos(LimbSpan a) noexcept {
  for (auto& limb : a) limb = ~limb;
  increment(a);
}

bool is_zero(ConstLimbSpan a) noexcept {
  for (const Limb limb : a) {
    if (limb != 0) return false;
  }
  return true;
}

bool sign_bit(ConstLimbSpan a) noexcept {
  return !a.empty() && (a[0] >> 63) != 0;
}

int compare_unsigned(ConstLimbSpan a, ConstLimbSpan b) noexcept {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int compare_twos(ConstLimbSpan a, ConstLimbSpan b) noexcept {
  const bool sa = sign_bit(a);
  const bool sb = sign_bit(b);
  if (sa != sb) return sa ? -1 : 1;
  // Same sign: two's-complement ordering matches unsigned ordering.
  return compare_unsigned(a, b);
}

void shift_left_limbs(LimbSpan a, std::size_t count) noexcept {
  if (count == 0) return;
  const std::size_t n = a.size();
  if (count >= n) {
    for (auto& limb : a) limb = 0;
    return;
  }
  for (std::size_t i = 0; i + count < n; ++i) a[i] = a[i + count];
  for (std::size_t i = n - count; i < n; ++i) a[i] = 0;
}

void shift_right_limbs(LimbSpan a, std::size_t count, Limb fill) noexcept {
  if (count == 0) return;
  const std::size_t n = a.size();
  if (count >= n) {
    for (auto& limb : a) limb = fill;
    return;
  }
  for (std::size_t i = n; i-- > count;) a[i] = a[i - count];
  for (std::size_t i = 0; i < count; ++i) a[i] = fill;
}

void shift_left_bits(LimbSpan a, unsigned bits) noexcept {
  if (bits == 0) return;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Limb lo = (i + 1 < n) ? a[i + 1] : 0;
    a[i] = (a[i] << bits) | (lo >> (64 - bits));
  }
}

void shift_right_bits(LimbSpan a, unsigned bits) noexcept {
  if (bits == 0) return;
  const std::size_t n = a.size();
  for (std::size_t i = n; i-- > 0;) {
    const Limb hi = (i > 0) ? a[i - 1] : 0;
    a[i] = (a[i] >> bits) | (hi << (64 - bits));
  }
}

Limb mul_small(LimbSpan a, Limb m) noexcept {
  Limb carry = 0;
  for (std::size_t i = a.size(); i-- > 0;) {
    const U128 p = static_cast<U128>(a[i]) * m + carry;
    a[i] = static_cast<Limb>(p);
    carry = static_cast<Limb>(p >> 64);
  }
  return carry;
}

Limb divmod_small(LimbSpan a, Limb d) noexcept {
  Limb rem = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const U128 cur = (static_cast<U128>(rem) << 64) | a[i];
    a[i] = static_cast<Limb>(cur / d);
    rem = static_cast<Limb>(cur % d);
  }
  return rem;
}

int highest_set_bit(ConstLimbSpan a) noexcept {
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != 0) {
      const int within = 63 - std::countl_zero(a[i]);
      return static_cast<int>((n - 1 - i) * 64) + within;
    }
  }
  return -1;
}

std::string to_hex(ConstLimbSpan a) {
  std::string out = "0x";
  char buf[17];
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i != 0) out += '_';
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(a[i]));
    out += buf;
  }
  return out;
}

}  // namespace hpsum::util
