// Out-of-line pieces of the limb toolkit. The arithmetic lives in
// limbs.hpp as constexpr inline functions (the compile-time proofs and the
// unrolled kernels need the definitions visible); only the string
// formatting, which drags in stdio, stays here.
#include "util/limbs.hpp"

#include <cstdio>

namespace hpsum::util {

std::string to_hex(ConstLimbSpan a) {
  std::string out = "0x";
  char buf[17];
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i != 0) out += '_';
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(a[i]));
    out += buf;
  }
  return out;
}

}  // namespace hpsum::util
