// Sanitizer and analyzer annotations for the limb kernels.
//
// The HP method's core trick is that unsigned 64-bit addition wraps mod
// 2^64 — two's complement limb arithmetic *depends* on that wraparound, so
// the overflow is intended, not a bug. Clang's -fsanitize=integer
// (unsigned-integer-overflow) would report every carry as a finding;
// HPSUM_ALLOW_UNSIGNED_WRAP marks the functions where wraparound is part of
// the algorithm so those reports are suppressed deliberately and anything
// *outside* an annotated kernel still gets flagged. GCC has no
// unsigned-integer-overflow sanitizer (unsigned wrap is defined behavior),
// so the macro expands to nothing there.
//
// docs/ANALYSIS.md lists every annotated site and why it wraps.
#pragma once

#if defined(__clang__)
#define HPSUM_ALLOW_UNSIGNED_WRAP \
  __attribute__((no_sanitize("unsigned-integer-overflow")))
#else
#define HPSUM_ALLOW_UNSIGNED_WRAP
#endif
