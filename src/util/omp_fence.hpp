// OmpRegionFence — an instrumented end-of-region barrier for OpenMP teams.
//
// libgomp ships without ThreadSanitizer instrumentation, so the implicit
// barrier that ends a `#pragma omp parallel` region is invisible to TSan:
// it orders the workers' last reads before the master's return, but TSan
// never sees the synchronization edge. When the master then reuses or frees
// region-shared memory (stack vectors of slices/partials, a reduction
// temporary freed by a destructor), TSan reports the workers' in-region
// reads as racing the master's post-region writes. The worker side of those
// reports frequently shows "[failed to restore the stack]", so a
// `race:gomp_*` suppression cannot match them — the reports must be
// prevented, not suppressed.
//
// The fence rebuilds the ordering edge out of instrumented atomics:
//
//   OmpRegionFence fence;
//   #pragma omp parallel
//   {
//     ... region body (or: #pragma omp for [reduction] ... ) ...
//     fence.arrive();          // LAST statement of the region body
//   }
//   fence.wait(team_size);     // first statement after the region
//
// Each worker's release increment happens after everything it did in the
// region; the master's acquire spin observes all of them before any
// post-region reuse, so TSan sees a happens-before path from every
// in-region access to the master's continuation. Under combined
// `parallel for reduction` pragmas, split the construct (`parallel` +
// `for reduction`) so arrive() has somewhere to live after the loop's
// implicit barrier.
//
// Cost: one relaxed-backoff spin per region (regions here are
// benchmark-scale, microseconds to milliseconds), zero per-element work.
// This is a correctness-of-observability device, not a synchronization
// primitive the algorithm needs — the algorithm's ordering still comes
// from OpenMP's own barrier.
#pragma once

#include <atomic>
#include <thread>

namespace hpsum::util {

class OmpRegionFence {
 public:
  OmpRegionFence() noexcept = default;
  OmpRegionFence(const OmpRegionFence&) = delete;
  OmpRegionFence& operator=(const OmpRegionFence&) = delete;

  /// Worker side: call as the LAST statement inside the parallel region.
  /// The release pairs with wait()'s acquire, publishing every prior
  /// in-region access to the thread that continues after the region.
  void arrive() noexcept { done_.fetch_add(1, std::memory_order_release); }

  /// Master side: call immediately after the region, with the number of
  /// threads that executed it. Spins (the workers are already at or past
  /// the region's own barrier, so the wait is bounded by instrumentation
  /// skew, not by the region's work) and resets for reuse.
  void wait(int team_size) noexcept {
    const auto expected = static_cast<unsigned>(team_size);
    while (done_.load(std::memory_order_acquire) < expected) {
      std::this_thread::yield();
    }
    done_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<unsigned> done_{0};
};

}  // namespace hpsum::util
