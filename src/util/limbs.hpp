// Multiword ("limb") integer arithmetic on spans of 64-bit words.
//
// Limb order convention: **big-endian**, i.e. limbs[0] is the MOST
// significant word. This matches the paper's indexing (eq. 2: a_0 carries
// the largest weight 2^(64*(N-k-1))), so the core HP code and these helpers
// can share spans without reversing.
//
// Values are interpreted either as unsigned magnitudes or as two's
// complement, per function. All operations are allocation-free and operate
// in place, which is what the hot reduction loops need.
//
// Everything except to_hex is constexpr: the conversion and addition
// kernels built on these helpers are provably pure integer arithmetic
// because the compiler can evaluate them at compile time
// (tests/test_constexpr_proofs.cpp holds the static_assert proofs).
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>

#include "util/annotations.hpp"

namespace hpsum::util {

using Limb = std::uint64_t;
using LimbSpan = std::span<Limb>;
using ConstLimbSpan = std::span<const Limb>;

namespace detail {

__extension__ using U128 = unsigned __int128;

// One full-width add step: *out = x + y + carry_in, returns carry out.
// Unsigned wraparound intended: that is what carry detection observes.
HPSUM_ALLOW_UNSIGNED_WRAP
constexpr bool addc(Limb x, Limb y, bool carry_in, Limb* out) noexcept {
  const Limb s = x + y;
  const bool c1 = s < x;
  const Limb t = s + static_cast<Limb>(carry_in);
  const bool c2 = t < s;
  *out = t;
  return c1 || c2;
}

// One full-width subtract step: *out = x - y - borrow_in, returns borrow out.
// Unsigned wraparound intended.
HPSUM_ALLOW_UNSIGNED_WRAP
constexpr bool subb(Limb x, Limb y, bool borrow_in, Limb* out) noexcept {
  const Limb d = x - y;
  const bool b1 = x < y;
  const Limb t = d - static_cast<Limb>(borrow_in);
  const bool b2 = d < static_cast<Limb>(borrow_in);
  *out = t;
  return b1 || b2;
}

}  // namespace detail

/// a += b (same length). Returns the carry out of the most significant limb.
constexpr bool add_into(LimbSpan a, ConstLimbSpan b) noexcept {
  bool carry = false;
  for (std::size_t i = a.size(); i-- > 0;) {
    carry = detail::addc(a[i], b[i], carry, &a[i]);
  }
  return carry;
}

/// a -= b (same length). Returns the borrow out of the most significant limb.
constexpr bool sub_into(LimbSpan a, ConstLimbSpan b) noexcept {
  bool borrow = false;
  for (std::size_t i = a.size(); i-- > 0;) {
    borrow = detail::subb(a[i], b[i], borrow, &a[i]);
  }
  return borrow;
}

/// a += 1 at the least significant limb. Returns the carry out of the top.
HPSUM_ALLOW_UNSIGNED_WRAP
constexpr bool increment(LimbSpan a) noexcept {
  for (std::size_t i = a.size(); i-- > 0;) {
    if (++a[i] != 0) return false;
  }
  return true;
}

/// Two's complement negation in place: a = ~a + 1. The carry out of
/// increment is dropped on purpose: negating zero wraps back to zero.
constexpr void negate_twos(LimbSpan a) noexcept {
  for (auto& limb : a) limb = ~limb;
  increment(a);  // hplint: allow(discard-status) — carry out of ~0+1 is the identity -0 == 0
}

/// True iff every limb is zero.
[[nodiscard]] constexpr bool is_zero(ConstLimbSpan a) noexcept {
  for (const Limb limb : a) {
    if (limb != 0) return false;
  }
  return true;
}

/// Sign bit of a two's-complement value (bit 63 of the most significant limb).
[[nodiscard]] constexpr bool sign_bit(ConstLimbSpan a) noexcept {
  return !a.empty() && (a[0] >> 63) != 0;
}

/// Three-way comparison of unsigned magnitudes: -1, 0, or +1.
[[nodiscard]] constexpr int compare_unsigned(ConstLimbSpan a,
                                             ConstLimbSpan b) noexcept {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

/// Three-way comparison of two's-complement values: -1, 0, or +1.
[[nodiscard]] constexpr int compare_twos(ConstLimbSpan a,
                                         ConstLimbSpan b) noexcept {
  const bool sa = sign_bit(a);
  const bool sb = sign_bit(b);
  if (sa != sb) return sa ? -1 : 1;
  // Same sign: two's-complement ordering matches unsigned ordering.
  return compare_unsigned(a, b);
}

/// Shifts left (towards the most significant limb) by whole limbs,
/// filling vacated low limbs with zero. Bits shifted past the top are lost.
constexpr void shift_left_limbs(LimbSpan a, std::size_t count) noexcept {
  if (count == 0) return;
  const std::size_t n = a.size();
  if (count >= n) {
    for (auto& limb : a) limb = 0;
    return;
  }
  for (std::size_t i = 0; i + count < n; ++i) a[i] = a[i + count];
  for (std::size_t i = n - count; i < n; ++i) a[i] = 0;
}

/// Shifts right (towards the least significant limb) by whole limbs,
/// filling vacated high limbs with `fill` (use ~0ull for arithmetic shift
/// of a negative two's-complement value, 0 otherwise).
constexpr void shift_right_limbs(LimbSpan a, std::size_t count,
                                 Limb fill = 0) noexcept {
  if (count == 0) return;
  const std::size_t n = a.size();
  if (count >= n) {
    for (auto& limb : a) limb = fill;
    return;
  }
  for (std::size_t i = n; i-- > count;) a[i] = a[i - count];
  for (std::size_t i = 0; i < count; ++i) a[i] = fill;
}

/// Shifts left by `bits` (0 <= bits < 64) across limb boundaries.
constexpr void shift_left_bits(LimbSpan a, unsigned bits) noexcept {
  if (bits == 0) return;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Limb lo = (i + 1 < n) ? a[i + 1] : 0;
    a[i] = (a[i] << bits) | (lo >> (64 - bits));
  }
}

/// Logical shift right by `bits` (0 <= bits < 64) across limb boundaries.
constexpr void shift_right_bits(LimbSpan a, unsigned bits) noexcept {
  if (bits == 0) return;
  const std::size_t n = a.size();
  for (std::size_t i = n; i-- > 0;) {
    const Limb hi = (i > 0) ? a[i - 1] : 0;
    a[i] = (a[i] >> bits) | (hi << (64 - bits));
  }
}

/// a *= m for a small multiplier; value treated as unsigned.
/// Returns the carry (overflow) out of the most significant limb.
constexpr Limb mul_small(LimbSpan a, Limb m) noexcept {
  Limb carry = 0;
  for (std::size_t i = a.size(); i-- > 0;) {
    const detail::U128 p = static_cast<detail::U128>(a[i]) * m + carry;
    a[i] = static_cast<Limb>(p);
    carry = static_cast<Limb>(p >> 64);
  }
  return carry;
}

/// a /= d for a small divisor; value treated as unsigned.
/// Returns the remainder. Precondition: d != 0.
constexpr Limb divmod_small(LimbSpan a, Limb d) noexcept {
  Limb rem = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const detail::U128 cur = (static_cast<detail::U128>(rem) << 64) | a[i];
    a[i] = static_cast<Limb>(cur / d);
    rem = static_cast<Limb>(cur % d);
  }
  return rem;
}

/// Index of the highest set bit treating the span as one big unsigned
/// integer, or -1 if the value is zero. Bit 0 is the least significant bit
/// of the last limb.
[[nodiscard]] constexpr int highest_set_bit(ConstLimbSpan a) noexcept {
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != 0) {
      const int within = 63 - std::countl_zero(a[i]);
      return static_cast<int>((n - 1 - i) * 64) + within;
    }
  }
  return -1;
}

/// Hex rendering "0x..." with limbs separated by '_' (debugging aid).
[[nodiscard]] std::string to_hex(ConstLimbSpan a);

}  // namespace hpsum::util
