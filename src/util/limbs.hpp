// Multiword ("limb") integer arithmetic on spans of 64-bit words.
//
// Limb order convention: **big-endian**, i.e. limbs[0] is the MOST
// significant word. This matches the paper's indexing (eq. 2: a_0 carries
// the largest weight 2^(64*(N-k-1))), so the core HP code and these helpers
// can share spans without reversing.
//
// Values are interpreted either as unsigned magnitudes or as two's
// complement, per function. All operations are allocation-free and operate
// in place, which is what the hot reduction loops need.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace hpsum::util {

using Limb = std::uint64_t;
using LimbSpan = std::span<Limb>;
using ConstLimbSpan = std::span<const Limb>;

/// a += b (same length). Returns the carry out of the most significant limb.
bool add_into(LimbSpan a, ConstLimbSpan b) noexcept;

/// a -= b (same length). Returns the borrow out of the most significant limb.
bool sub_into(LimbSpan a, ConstLimbSpan b) noexcept;

/// a += 1 at the least significant limb. Returns the carry out of the top.
bool increment(LimbSpan a) noexcept;

/// Two's complement negation in place: a = ~a + 1.
void negate_twos(LimbSpan a) noexcept;

/// True iff every limb is zero.
[[nodiscard]] bool is_zero(ConstLimbSpan a) noexcept;

/// Sign bit of a two's-complement value (bit 63 of the most significant limb).
[[nodiscard]] bool sign_bit(ConstLimbSpan a) noexcept;

/// Three-way comparison of unsigned magnitudes: -1, 0, or +1.
[[nodiscard]] int compare_unsigned(ConstLimbSpan a, ConstLimbSpan b) noexcept;

/// Three-way comparison of two's-complement values: -1, 0, or +1.
[[nodiscard]] int compare_twos(ConstLimbSpan a, ConstLimbSpan b) noexcept;

/// Shifts left (towards the most significant limb) by whole limbs,
/// filling vacated low limbs with zero. Bits shifted past the top are lost.
void shift_left_limbs(LimbSpan a, std::size_t count) noexcept;

/// Shifts right (towards the least significant limb) by whole limbs,
/// filling vacated high limbs with `fill` (use ~0ull for arithmetic shift
/// of a negative two's-complement value, 0 otherwise).
void shift_right_limbs(LimbSpan a, std::size_t count, Limb fill = 0) noexcept;

/// Shifts left by `bits` (0 <= bits < 64) across limb boundaries.
void shift_left_bits(LimbSpan a, unsigned bits) noexcept;

/// Logical shift right by `bits` (0 <= bits < 64) across limb boundaries.
void shift_right_bits(LimbSpan a, unsigned bits) noexcept;

/// a *= m for a small multiplier; value treated as unsigned.
/// Returns the carry (overflow) out of the most significant limb.
Limb mul_small(LimbSpan a, Limb m) noexcept;

/// a /= d for a small divisor; value treated as unsigned.
/// Returns the remainder. Precondition: d != 0.
Limb divmod_small(LimbSpan a, Limb d) noexcept;

/// Index of the highest set bit treating the span as one big unsigned
/// integer, or -1 if the value is zero. Bit 0 is the least significant bit
/// of the last limb.
[[nodiscard]] int highest_set_bit(ConstLimbSpan a) noexcept;

/// Hex rendering "0x..." with limbs separated by '_' (debugging aid).
[[nodiscard]] std::string to_hex(ConstLimbSpan a);

}  // namespace hpsum::util
