#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace hpsum::util {

Args::Args(int argc, char** argv, std::vector<std::string> known) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag[=value], got: " +
                                  std::string(arg));
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value = "true";
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      throw std::invalid_argument("unknown flag: --" + name);
    }
    values_[name] = value;
  }
}

std::optional<std::string> Args::raw(std::string_view name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::int64_t Args::get_int(std::string_view name, std::int64_t fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  std::string s = *v;
  std::int64_t scale = 1;
  if (!s.empty()) {
    switch (s.back()) {
      case 'k': case 'K': scale = 1024; s.pop_back(); break;
      case 'm': case 'M': scale = 1024 * 1024; s.pop_back(); break;
      case 'g': case 'G': scale = 1024 * 1024 * 1024; s.pop_back(); break;
      default: break;
    }
  }
  return std::stoll(s) * scale;
}

double Args::get_double(std::string_view name, double fallback) const {
  const auto v = raw(name);
  return v ? std::stod(*v) : fallback;
}

std::string Args::get_string(std::string_view name, std::string fallback) const {
  const auto v = raw(name);
  return v ? *v : fallback;
}

bool Args::get_bool(std::string_view name) const {
  const auto v = raw(name);
  return v && (*v == "true" || *v == "1" || *v == "yes");
}

bool Args::full_scale() {
  const char* env = std::getenv("HPSUM_FULL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

}  // namespace hpsum::util
