#include "util/timer.hpp"

#include <ctime>

namespace hpsum::util {

std::int64_t ThreadCpuTimer::now_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace hpsum::util
