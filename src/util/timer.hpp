// Wallclock and per-thread CPU timers.
//
// The scaling harness reports *modeled* parallel time on this single-core
// host (DESIGN.md §2): each processing element measures its own busy time
// with ThreadCpuTimer, and the harness takes the max as the critical path.
#pragma once

#include <chrono>
#include <cstdint>

namespace hpsum::util {

/// Monotonic wallclock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  /// Restarts the stopwatch at zero.
  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID).
///
/// On an oversubscribed host, wallclock across threads is meaningless; the
/// CPU time each thread actually consumed is the honest per-PE cost.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() noexcept { reset(); }

  /// Restarts the stopwatch at zero.
  void reset() noexcept { start_ns_ = now_ns(); }

  /// CPU-seconds this thread has consumed since construction/reset.
  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(now_ns() - start_ns_) * 1e-9;
  }

 private:
  static std::int64_t now_ns() noexcept;
  std::int64_t start_ns_ = 0;
};

}  // namespace hpsum::util
