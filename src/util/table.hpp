// Column-aligned table and CSV output for bench harnesses.
//
// Every bench binary prints the rows/series of the paper table or figure it
// regenerates (EXPERIMENTS.md records them), so presentation lives in one
// place instead of per-bench printf soup.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hpsum::util {

/// Accumulates rows of stringly-typed cells and prints them column-aligned.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Starts a new row. Cells are added with add_cell / add_num.
  void begin_row();

  /// Appends a string cell to the current row.
  void add_cell(std::string cell);

  /// Appends a formatted numeric cell (%.*g).
  void add_num(double value, int precision = 6);

  /// Appends an integer cell.
  void add_int(std::int64_t value);

  /// Writes the aligned table (headers, rule, rows) to `os`.
  void print(std::ostream& os) const;

  /// Writes the same data as CSV to `os` (for plotting scripts).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hpsum::util
