// Deterministic pseudo-random number generation for workloads and tests.
//
// Benchmarks and property tests in this project must be reproducible run to
// run, so all randomness flows through the generators here (never
// std::random_device or rand()). xoshiro256** is the workhorse; splitmix64
// seeds it and decorrelates user-supplied seeds.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace hpsum::util {

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used to expand a single
/// user seed into the 256-bit state of Xoshiro256ss, and handy on its own
/// for hashing loop indices into independent streams.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Returns the next 64-bit value in the stream.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: fast, passes BigCrush, and small enough
/// to embed one instance per thread / per rank without cache pressure.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed via SplitMix64.
  constexpr explicit Xoshiro256ss(std::uint64_t seed = 0x6A09E667F3BCC908ull) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Returns the next 64-bit value in the stream.
  constexpr result_type next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// UniformRandomBitGenerator interface (usable with <random> adapters).
  constexpr result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1) with 53 significant bits.
  constexpr double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    __extension__ using U128 = unsigned __int128;
    // Degenerate bound of 0 maps to 0 so callers need not special-case it.
    if (bound == 0) return 0;
    U128 m = static_cast<U128>(next()) * static_cast<U128>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<U128>(next()) * static_cast<U128>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Jump function: advances the stream by 2^128 steps. Used to carve one
  /// seed into many provably non-overlapping per-thread substreams.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull,
        0xA9582618E03FC9AAull, 0x39ABDC4529B1661Cull};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (const std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        next();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int r) noexcept {
    return (x << r) | (x >> (64 - r));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Returns a generator whose stream is the `stream`-th 2^128-step jump of
/// the stream seeded by `seed`. Distinct streams never overlap, which keeps
/// per-rank / per-thread workload generation independent yet reproducible.
inline Xoshiro256ss make_stream(std::uint64_t seed, std::uint64_t stream) noexcept {
  Xoshiro256ss g(seed);
  for (std::uint64_t i = 0; i < stream; ++i) g.jump();
  return g;
}

}  // namespace hpsum::util
