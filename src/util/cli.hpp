// Minimal command-line flag parsing for bench and example binaries.
//
// Syntax: --name=value or --flag. Unknown flags are an error so typos in
// experiment sweeps fail loudly instead of silently running the default.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hpsum::util {

/// Parsed command line. Construct once in main(), then query typed flags.
class Args {
 public:
  /// Parses argv. `known` lists every accepted flag name; an argument that
  /// is not of the form --known[=value] raises std::invalid_argument.
  Args(int argc, char** argv, std::vector<std::string> known);

  /// Integer flag with default. Accepts size suffixes k/K, m/M, g/G
  /// (binary: 1k = 1024).
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t fallback) const;

  /// Floating-point flag with default.
  [[nodiscard]] double get_double(std::string_view name, double fallback) const;

  /// String flag with default.
  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string fallback) const;

  /// True iff --name or --name=true/1 was given.
  [[nodiscard]] bool get_bool(std::string_view name) const;

  /// True when the HPSUM_FULL environment variable requests paper-scale
  /// problem sizes (32M summands, 16384 trials) instead of the scaled-down
  /// defaults suitable for a laptop run. See DESIGN.md §2.
  [[nodiscard]] static bool full_scale();

 private:
  [[nodiscard]] std::optional<std::string> raw(std::string_view name) const;
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace hpsum::util
