#include "util/decimal.hpp"

#include <algorithm>
#include <string_view>
#include <vector>

namespace hpsum::util {

std::string to_decimal_string(ConstLimbSpan limbs, std::size_t frac_limbs,
                              std::size_t max_frac_digits) {
  std::vector<Limb> mag(limbs.begin(), limbs.end());
  const bool negative = sign_bit(limbs);
  if (negative) negate_twos(LimbSpan(mag));

  const std::size_t n = mag.size();
  const std::size_t int_limbs = n - frac_limbs;

  // Integer part: repeated division by 10^19 (the largest power of ten in
  // a limb) peels off 19 decimal digits per pass.
  std::string int_part;
  {
    std::vector<Limb> whole(mag.begin(), mag.begin() + int_limbs);
    constexpr Limb kPow10_19 = 10'000'000'000'000'000'000ull;
    if (int_limbs == 0 || is_zero(ConstLimbSpan(whole))) {
      int_part = "0";
    } else {
      while (!is_zero(ConstLimbSpan(whole))) {
        Limb chunk = divmod_small(LimbSpan(whole), kPow10_19);
        const bool more = !is_zero(ConstLimbSpan(whole));
        char buf[20];
        int len = 0;
        do {
          buf[len++] = static_cast<char>('0' + (chunk % 10));
          chunk /= 10;
        } while (chunk != 0);
        // Interior chunks must be zero-padded to their full 19 digits.
        if (more) {
          while (len < 19) buf[len++] = '0';
        }
        int_part.append(buf, buf + len);  // reversed; fixed below
      }
      std::reverse(int_part.begin(), int_part.end());
    }
  }

  // Fraction part: repeated multiplication by 10; the carry out of the top
  // fractional limb is the next digit.
  std::string frac_part;
  bool truncated = false;
  if (frac_limbs > 0) {
    std::vector<Limb> frac(mag.begin() + int_limbs, mag.end());
    while (!is_zero(ConstLimbSpan(frac))) {
      if (max_frac_digits != 0 && frac_part.size() >= max_frac_digits) {
        truncated = true;
        break;
      }
      const Limb digit = mul_small(LimbSpan(frac), 10);
      frac_part += static_cast<char>('0' + digit);
    }
    // Trailing zeros are noise in a complete expansion but placeholders in
    // a truncated one ("0.0000000000..." must keep them).
    if (!truncated) {
      while (!frac_part.empty() && frac_part.back() == '0') frac_part.pop_back();
    }
  }

  std::string out;
  if (negative) out += '-';
  out += int_part;
  if (!frac_part.empty()) {
    out += '.';
    out += frac_part;
    if (truncated) out += "...";
  }
  return out;
}

namespace {

// Little helper for the fraction parser: big unsigned integers in
// big-endian limb vectors, value < 10^d for d decimal digits.
using BigInt = std::vector<Limb>;

// v *= 2 in place (widths are sized with headroom, so no carry out).
void double_in_place(BigInt& v) {
  shift_left_bits(LimbSpan(v), 1);
}

}  // namespace

ParseResult parse_decimal(std::string_view s, LimbSpan limbs,
                          std::size_t frac_limbs) {
  for (auto& limb : limbs) limb = 0;
  const std::size_t n = limbs.size();
  if (frac_limbs > n || s.empty()) return ParseResult::kSyntax;
  const std::size_t int_limbs = n - frac_limbs;

  bool negative = false;
  if (s.front() == '-' || s.front() == '+') {
    negative = s.front() == '-';
    s.remove_prefix(1);
  }
  bool inexact = false;
  if (s.ends_with("...")) {  // truncated rendering from to_decimal_string
    inexact = true;
    s.remove_suffix(3);
  }
  const std::size_t dot = s.find('.');
  const std::string_view int_digits = s.substr(0, dot);
  const std::string_view frac_digits =
      dot == std::string_view::npos ? std::string_view{} : s.substr(dot + 1);
  if (int_digits.empty() && frac_digits.empty()) return ParseResult::kSyntax;
  for (const char c : int_digits) {
    if (c < '0' || c > '9') return ParseResult::kSyntax;
  }
  for (const char c : frac_digits) {
    if (c < '0' || c > '9') return ParseResult::kSyntax;
  }

  // Integer part: value = value*10 + digit over the top int_limbs limbs.
  for (const char c : int_digits) {
    if (int_limbs == 0) {
      if (c != '0') return ParseResult::kOverflow;
      continue;
    }
    const LimbSpan whole = limbs.first(int_limbs);
    if (mul_small(whole, 10) != 0) {
      for (auto& limb : limbs) limb = 0;
      return ParseResult::kOverflow;
    }
    Limb carry = static_cast<Limb>(c - '0');
    for (std::size_t i = int_limbs; carry != 0 && i-- > 0;) {
      const Limb before = limbs[i];
      limbs[i] += carry;
      carry = (limbs[i] < before) ? 1 : 0;
    }
    if (carry != 0) {
      for (auto& limb : limbs) limb = 0;
      return ParseResult::kOverflow;
    }
  }

  // Fraction part: with F = digit-string value and D = 10^d, emit bits by
  // repeated doubling: bit = (2F >= D), F = 2F - D when set.
  if (!frac_digits.empty() && frac_limbs > 0) {
    const std::size_t big_limbs = frac_digits.size() / 19 + 2;
    BigInt f(big_limbs, 0);
    BigInt d10(big_limbs, 0);
    d10.back() = 1;
    for (const char c : frac_digits) {
      // hplint: allow(discard-status) — f < 10^digits and big_limbs gives
      // 128 spare bits of headroom, so the x10 carry-out cannot fire
      mul_small(LimbSpan(f), 10);
      Limb carry = static_cast<Limb>(c - '0');
      for (std::size_t i = big_limbs; carry != 0 && i-- > 0;) {
        const Limb before = f[i];
        f[i] += carry;
        carry = (f[i] < before) ? 1 : 0;
      }
      // hplint: allow(discard-status) — same headroom argument for D=10^d
      mul_small(LimbSpan(d10), 10);
    }
    for (std::size_t bit = 0; bit < 64 * frac_limbs; ++bit) {
      if (is_zero(ConstLimbSpan(f))) break;
      double_in_place(f);
      const bool set = compare_unsigned(ConstLimbSpan(f), ConstLimbSpan(d10)) >= 0;
      if (set) {
        // hplint: allow(discard-status) — guarded by compare_unsigned >= 0
        // above, so the borrow-out cannot fire
        sub_into(LimbSpan(f), ConstLimbSpan(d10));
        const std::size_t li = int_limbs + bit / 64;
        limbs[li] |= (Limb{1} << (63 - bit % 64));
      }
    }
    if (!is_zero(ConstLimbSpan(f))) inexact = true;
  } else if (!frac_digits.empty()) {
    // No fraction limbs in the format: any nonzero fraction digit is lost.
    for (const char c : frac_digits) {
      if (c != '0') {
        inexact = true;
        break;
      }
    }
  }

  // The magnitude must leave the sign bit clear.
  if ((limbs[0] >> 63) != 0) {
    for (auto& limb : limbs) limb = 0;
    return ParseResult::kOverflow;
  }
  if (negative) negate_twos(limbs);
  return inexact ? ParseResult::kInexact : ParseResult::kOk;
}

}  // namespace hpsum::util
