// Exact decimal rendering of fixed-point multiword values.
//
// A two's-complement value with k fractional limbs has an exact finite
// decimal expansion (binary fractions always do). Tests use this to compare
// HP sums against independently computed references without any rounding,
// and the examples use it to show users what "perfect precision" means.
#pragma once

#include <cstddef>
#include <string>

#include "util/limbs.hpp"

namespace hpsum::util {

/// Renders a two's-complement fixed-point value exactly in decimal.
///
/// `limbs` is big-endian (limbs[0] most significant); the last `frac_limbs`
/// limbs hold the fraction. `max_frac_digits` truncates the fractional
/// expansion (0 means unlimited — up to 64*frac_limbs*log10(2) digits);
/// trailing zeros are trimmed either way. A truncated expansion ends with
/// "...".
[[nodiscard]] std::string to_decimal_string(ConstLimbSpan limbs,
                                            std::size_t frac_limbs,
                                            std::size_t max_frac_digits = 0);

/// Result of parse_decimal.
enum class ParseResult {
  kOk,        ///< parsed exactly
  kInexact,   ///< parsed; fraction bits below the lsb truncated toward zero
  kOverflow,  ///< integer part does not fit the format (limbs zeroed)
  kSyntax,    ///< not a valid "[-]digits[.digits[...]]" string (limbs zeroed)
};

/// Parses a decimal string into a two's-complement fixed-point value with
/// `frac_limbs` fractional limbs — the exact inverse of to_decimal_string
/// (a trailing "..." from a truncated rendering parses as kInexact). This
/// makes HP values round-trippable through text logs and checkpoints with
/// no precision loss.
ParseResult parse_decimal(std::string_view s, LimbSpan limbs,
                          std::size_t frac_limbs);

}  // namespace hpsum::util
