#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace hpsum::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::begin_row() { rows_.emplace_back(); }

void TablePrinter::add_cell(std::string cell) {
  rows_.back().push_back(std::move(cell));
}

void TablePrinter::add_num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  add_cell(buf);
}

void TablePrinter::add_int(std::int64_t value) {
  add_cell(std::to_string(value));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << "  " << cell;
      for (std::size_t pad = cell.size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (const std::size_t w : widths) rule += "  " + std::string(w, '-');
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace hpsum::util
