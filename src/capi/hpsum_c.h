/* hpsum_c.h — C API for the hpsum library.
 *
 * The method's home turf is Fortran/C climate and N-body codes (the
 * Hallberg baseline comes from the MOM ocean model), so the exact
 * accumulator is exposed behind a plain C89-callable interface: opaque
 * handles, no exceptions (status codes), no templates. Every function is
 * thread-compatible (distinct handles may be used from distinct threads;
 * one handle must not be shared without external synchronization — use
 * one accumulator per thread and hpsum_merge, exactly like the C++ API).
 *
 * Example:
 *   hpsum_t* acc = hpsum_create(6, 3);
 *   for (i = 0; i < n; ++i) hpsum_add(acc, x[i]);
 *   double total = hpsum_result(acc);
 *   if (hpsum_status(acc) != HPSUM_OK) { ... }
 *   hpsum_destroy(acc);
 */
#ifndef HPSUM_C_H_
#define HPSUM_C_H_

#include <stddef.h> /* size_t */

#ifdef __cplusplus
extern "C" {
#endif

/* Opaque exact accumulator (an HpDyn underneath). */
typedef struct hpsum_s hpsum_t;

/* Status bitmask (mirrors hpsum::HpStatus). */
enum {
  HPSUM_OK = 0,
  HPSUM_CONVERT_OVERFLOW = 1 << 0,
  HPSUM_ADD_OVERFLOW = 1 << 1,
  HPSUM_TO_DOUBLE_OVERFLOW = 1 << 2,
  HPSUM_INEXACT = 1 << 3,
  HPSUM_TO_DOUBLE_INEXACT = 1 << 4,
  HPSUM_INVALID_OP = 1 << 5
};

/* Creates a zero accumulator with n 64-bit limbs, k fractional
 * (paper parameters N, k). Returns NULL for invalid parameters. */
hpsum_t* hpsum_create(int n, int k);

/* Destroys an accumulator (NULL is a no-op). */
void hpsum_destroy(hpsum_t* acc);

/* Adds one double exactly (order-invariant). */
void hpsum_add(hpsum_t* acc, double x);

/* Adds a whole array (equivalent to calling hpsum_add per element). */
void hpsum_add_array(hpsum_t* acc, const double* xs, size_t n);

/* Merges src into dst (formats must match; returns 0 on success,
 * nonzero on format mismatch). src is unchanged. */
int hpsum_merge(hpsum_t* dst, const hpsum_t* src);

/* The accumulated sum rounded once to double. */
double hpsum_result(const hpsum_t* acc);

/* Sticky status bitmask (HPSUM_* flags); 0 while everything was exact. */
int hpsum_status(const hpsum_t* acc);

/* Clears value and status. */
void hpsum_clear(hpsum_t* acc);

/* Writes the exact decimal rendering (NUL-terminated, truncated to the
 * buffer; returns the untruncated length like snprintf). */
size_t hpsum_decimal(const hpsum_t* acc, char* buf, size_t buf_size);

/* Canonical serialization size for an accumulator of n limbs. */
size_t hpsum_serialized_size(int n);

/* Serializes into buf (must hold hpsum_serialized_size(n) bytes);
 * returns bytes written, 0 on error. Endian-independent. */
size_t hpsum_serialize(const hpsum_t* acc, void* buf, size_t buf_size);

/* Recreates an accumulator from a serialized image (NULL on error). */
hpsum_t* hpsum_deserialize(const void* buf, size_t buf_size);

#ifdef __cplusplus
}
#endif

#endif /* HPSUM_C_H_ */
