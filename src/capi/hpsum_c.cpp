#include "capi/hpsum_c.h"

#include <cstring>
#include <new>
#include <span>
#include <string>

#include "core/hp_dyn.hpp"
#include "core/hp_serialize.hpp"

/* The opaque handle wraps an HpDyn. All exceptions are caught at the C
 * boundary and turned into NULL/0/no-op results. */
static_assert(HPSUM_CONVERT_OVERFLOW ==
              static_cast<int>(hpsum::HpStatus::kConvertOverflow));
static_assert(HPSUM_ADD_OVERFLOW ==
              static_cast<int>(hpsum::HpStatus::kAddOverflow));
static_assert(HPSUM_TO_DOUBLE_OVERFLOW ==
              static_cast<int>(hpsum::HpStatus::kToDoubleOverflow));
static_assert(HPSUM_INEXACT == static_cast<int>(hpsum::HpStatus::kInexact));
static_assert(HPSUM_TO_DOUBLE_INEXACT ==
              static_cast<int>(hpsum::HpStatus::kToDoubleInexact));
static_assert(HPSUM_INVALID_OP ==
              static_cast<int>(hpsum::HpStatus::kInvalidOp));
struct hpsum_s {
  hpsum::HpDyn value;
  explicit hpsum_s(hpsum::HpConfig cfg) : value(cfg) {}
};

extern "C" {

hpsum_t* hpsum_create(int n, int k) {
  try {
    return new hpsum_s(hpsum::HpConfig{n, k});
  } catch (...) {
    return nullptr;
  }
}

void hpsum_destroy(hpsum_t* acc) { delete acc; }

void hpsum_add(hpsum_t* acc, double x) {
  if (acc != nullptr) acc->value += x;
}

void hpsum_add_array(hpsum_t* acc, const double* xs, size_t n) {
  if (acc == nullptr || xs == nullptr) return;
  for (size_t i = 0; i < n; ++i) acc->value += xs[i];
}

int hpsum_merge(hpsum_t* dst, const hpsum_t* src) {
  if (dst == nullptr || src == nullptr) return 1;
  try {
    dst->value += src->value;
    return 0;
  } catch (...) {
    return 1;
  }
}

double hpsum_result(const hpsum_t* acc) {
  return acc == nullptr ? 0.0 : acc->value.to_double();
}

int hpsum_status(const hpsum_t* acc) {
  return acc == nullptr
             ? HPSUM_CONVERT_OVERFLOW
             : static_cast<int>(static_cast<unsigned char>(acc->value.status()));
}

void hpsum_clear(hpsum_t* acc) {
  if (acc != nullptr) acc->value.clear();
}

size_t hpsum_decimal(const hpsum_t* acc, char* buf, size_t buf_size) {
  if (acc == nullptr || buf == nullptr || buf_size == 0) return 0;
  const std::string s = acc->value.to_decimal_string();
  const size_t copy = s.size() < buf_size - 1 ? s.size() : buf_size - 1;
  std::memcpy(buf, s.data(), copy);
  buf[copy] = '\0';
  return s.size();
}

size_t hpsum_serialized_size(int n) {
  if (n < 1 || n > hpsum::kMaxLimbs) return 0;
  return hpsum::serialized_size(hpsum::HpConfig{n, 0});
}

size_t hpsum_serialize(const hpsum_t* acc, void* buf, size_t buf_size) {
  if (acc == nullptr || buf == nullptr) return 0;
  const auto bytes = hpsum::serialize(acc->value);
  if (bytes.size() > buf_size) return 0;
  std::memcpy(buf, bytes.data(), bytes.size());
  return bytes.size();
}

hpsum_t* hpsum_deserialize(const void* buf, size_t buf_size) {
  if (buf == nullptr) return nullptr;
  try {
    const auto* p = static_cast<const std::byte*>(buf);
    hpsum::HpDyn v = hpsum::deserialize(std::span<const std::byte>(p, buf_size));
    auto* out = new hpsum_s(v.config());
    out->value = std::move(v);
    return out;
  } catch (...) {
    return nullptr;
  }
}

}  // extern "C"
