#include "rblas/rblas.hpp"

#include <cmath>

#include "core/hp_dyn.hpp"

namespace hpsum::rblas {

double sum(std::span<const double> x, HpConfig cfg) {
  // Engine-routed sequential reference (a 1-lane ShardSet<DynSum>);
  // bit-identical limbs+status to reduce_hp(x, cfg).
  return engine::local_reduce(x, cfg).to_double();
}

double asum(std::span<const double> x, HpConfig cfg) {
  // Stage |x| values into a small buffer and deposit each block into a
  // single engine shard, so the chunked staging path flows through the
  // same sink the parallel drivers use; bit-identical to the
  // acc += fabs(v) loop (each deposit is the block fast path).
  engine::ShardSet<engine::DynSum> sink(1, engine::DynSum(cfg));
  auto lane = sink.shard(0);
  double buf[2 * detail::kDotChunk];
  std::size_t fill = 0;
  for (const double v : x) {
    buf[fill++] = std::fabs(v);
    if (fill == 2 * detail::kDotChunk) {
      lane.deposit(std::span<const double>(buf, fill));
      fill = 0;
    }
  }
  if (fill != 0) lane.deposit(std::span<const double>(buf, fill));
  return sink.drain().result();
}

double dot(std::span<const double> x, std::span<const double> y,
           HpConfig cfg) {
  return dot_hp(x, y, cfg).to_double();
}

double nrm2(std::span<const double> x, HpConfig cfg) {
  return std::sqrt(dot_hp(x, x, cfg).to_double());
}

}  // namespace hpsum::rblas
