#include "rblas/rblas.hpp"

#include <cmath>

#include "core/hp_dyn.hpp"

namespace hpsum::rblas {

double sum(std::span<const double> x, HpConfig cfg) {
  return reduce_hp(x, cfg).to_double();
}

double asum(std::span<const double> x, HpConfig cfg) {
  HpDyn acc(cfg);
  for (const double v : x) acc += std::fabs(v);
  return acc.to_double();
}

double dot(std::span<const double> x, std::span<const double> y,
           HpConfig cfg) {
  return dot_hp(x, y, cfg).to_double();
}

double nrm2(std::span<const double> x, HpConfig cfg) {
  return std::sqrt(dot_hp(x, x, cfg).to_double());
}

}  // namespace hpsum::rblas
