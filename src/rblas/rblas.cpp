#include "rblas/rblas.hpp"

#include <cmath>

#include "core/hp_dyn.hpp"

namespace hpsum::rblas {

double sum(std::span<const double> x, HpConfig cfg) {
  return reduce_hp(x, cfg).to_double();
}

double asum(std::span<const double> x, HpConfig cfg) {
  // Stage |x| values into a small buffer so deposits flow through the
  // block fast path; bit-identical to the acc += fabs(v) loop.
  HpDyn acc(cfg);
  double buf[2 * detail::kDotChunk];
  std::size_t fill = 0;
  for (const double v : x) {
    buf[fill++] = std::fabs(v);
    if (fill == 2 * detail::kDotChunk) {
      acc.accumulate(std::span<const double>(buf, fill));
      fill = 0;
    }
  }
  if (fill != 0) acc.accumulate(std::span<const double>(buf, fill));
  return acc.to_double();
}

double dot(std::span<const double> x, std::span<const double> y,
           HpConfig cfg) {
  return dot_hp(x, y, cfg).to_double();
}

double nrm2(std::span<const double> x, HpConfig cfg) {
  return std::sqrt(dot_hp(x, x, cfg).to_double());
}

}  // namespace hpsum::rblas
