// rblas — reproducible BLAS-style reductions (library extension).
//
// The paper's closing argument is that global reductions of huge floating-
// point sets are becoming the norm and need reproducibility. The BLAS
// reductions are exactly such sums, so this module composes the HP method
// into the classic kernels: results are the mathematically exact reduction
// rounded once, hence bit-identical for any element order, blocking, or
// thread count (compare ReproBLAS/ExBLAS, which pursue the same contract
// with superaccumulators).
//
// All kernels take a compile-time format (hot path) with the paper's
// HP(8,4) as a wide default, and have OpenMP-parallel variants whose
// results are bit-identical to the sequential ones — that is the point.
#pragma once

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "backends/accumulators.hpp"
#include "core/dot.hpp"
#include "core/hp_fixed.hpp"
#include "core/reduce.hpp"
#include "engine/engine.hpp"
#include "util/omp_fence.hpp"

namespace hpsum::rblas {

/// Exact sum of all elements, rounded once (reproducible "sum").
template <int N = 8, int K = 4>
[[nodiscard]] double sum(std::span<const double> x) noexcept {
  return reduce_hp<N, K>(x).to_double();
}

/// Exact sum of absolute values (reproducible "asum"). |x| conversion is
/// sign manipulation only, so this is exact whenever sum() is.
template <int N = 8, int K = 4>
[[nodiscard]] double asum(std::span<const double> x) noexcept {
  // |x| deposits go through the carry-deferred block path one at a time;
  // bit-identical to the acc += fabs(v) loop (see core/hp_kernel.hpp).
  BlockAccumulator<N, K> blk;
  for (const double v : x) blk.add(std::fabs(v));
  return HpFixed<N, K>(blk).to_double();
}

/// Exact dot product rounded once (reproducible "dot"); see core/dot.hpp.
template <int N = 8, int K = 4>
[[nodiscard]] double dot(std::span<const double> x,
                         std::span<const double> y) noexcept {
  return dot_hp<N, K>(x, y).to_double();
}

/// Euclidean norm as sqrt of the EXACT sum of squares (reproducible
/// "nrm2"): two roundings total (to double, then sqrt), both deterministic.
/// Squares of doubles span ~2^±2044; size the format for your data or use
/// the default wide one.
template <int N = 8, int K = 4>
[[nodiscard]] double nrm2(std::span<const double> x) noexcept {
  return std::sqrt(dot_hp<N, K>(x, x).to_double());
}

/// Reproducible "gemv" (y = A x, row-major m x n): each y_i is an exact
/// dot product, so the whole result vector is order-invariant elementwise.
/// Parallelized over rows with OpenMP; bit-identical for any thread count.
template <int N = 8, int K = 4>
void gemv(std::size_t m, std::size_t n, std::span<const double> a,
          std::span<const double> x, std::span<double> y);

/// OpenMP-parallel exact sum: per-thread HP partials merged in thread-id
/// order. Bit-identical to sum() for every thread count.
template <int N = 8, int K = 4>
[[nodiscard]] double sum_parallel(std::span<const double> x, int threads);

// Runtime-format variants (for formats chosen from data at runtime).
[[nodiscard]] double sum(std::span<const double> x, HpConfig cfg);
[[nodiscard]] double asum(std::span<const double> x, HpConfig cfg);
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y,
                         HpConfig cfg);
[[nodiscard]] double nrm2(std::span<const double> x, HpConfig cfg);

}  // namespace hpsum::rblas

// ---- template definitions -------------------------------------------------

namespace hpsum::rblas {

template <int N, int K>
void gemv(std::size_t m, std::size_t n, std::span<const double> a,
          std::span<const double> x, std::span<double> y) {
  // Split `parallel for` so the region body can end with fence.arrive():
  // libgomp's end-of-region barrier orders the workers' y[i] writes before
  // the caller's reads, but is invisible to TSan (see util/omp_fence.hpp).
  util::OmpRegionFence fence;
  int team = 1;
#pragma omp parallel
  {
    if (omp_get_thread_num() == 0) team = omp_get_num_threads();
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < m; ++i) {
      y[i] = dot_hp<N, K>(a.subspan(i * n, n), x.first(n)).to_double();
    }
    fence.arrive();
  }
  fence.wait(team);
}

template <int N, int K>
double sum_parallel(std::span<const double> x, int threads) {
  // Thread t's slice lands in engine lane t; drain() merges lanes in
  // thread-id order — the same partial/merge sequence as the historical
  // explicit partials vector, so the result stays bit-identical to sum()
  // while the running total is live-snapshot-able through the engine.
  engine::ShardSet<backends::HpSum<N, K>> sink(
      static_cast<std::size_t>(threads));
  util::OmpRegionFence fence;
  int team = threads;
#pragma omp parallel num_threads(threads)
  {
    const auto t = static_cast<std::size_t>(omp_get_thread_num());
    if (t == 0) team = omp_get_num_threads();
    const auto p = static_cast<std::size_t>(threads);
    // Contiguous slices, like backends::partition.
    const std::size_t base = x.size() / p;
    const std::size_t extra = x.size() % p;
    const std::size_t begin = t * base + std::min(t, extra);
    const std::size_t len = base + (t < extra ? 1 : 0);
    sink.shard(t).deposit(x.subspan(begin, len));
    // TSan-visible edge from the shard-lane write to the drain below.
    fence.arrive();
  }
  fence.wait(team);
  return sink.drain().result();
}

}  // namespace hpsum::rblas
