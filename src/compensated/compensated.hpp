// Error-compensated summation baselines (paper §I related work).
//
// These are the "error-free transformation" techniques the paper positions
// HP against: they reduce rounding error dramatically at low cost but —
// unlike HP — do not in general eliminate it, and their results remain
// order-dependent. bench/ablate_accuracy places them on the accuracy/cost
// ladder between naive double summation and the exact methods.
#pragma once

#include <span>

namespace hpsum {

/// Error-free transformation of one addition (Knuth's TwoSum, branch-free):
/// sum + err == a + b exactly, with sum = fl(a + b).
struct TwoSumResult {
  double sum;
  double err;
};

/// Knuth TwoSum: works for any a, b.
[[nodiscard]] TwoSumResult two_sum(double a, double b) noexcept;

/// Error-free transformation of one multiplication (FMA-based TwoProduct):
/// sum + err == a * b exactly, with sum = fl(a * b). Exact provided the
/// product neither overflows nor falls into the subnormal range.
[[nodiscard]] TwoSumResult two_product(double a, double b) noexcept;

/// Ogita-Rump-Oishi Dot2: compensated dot product (twice-working-precision
/// accuracy, order-dependent). The strongest non-exact baseline for the
/// exact HP dot product in core/dot.hpp.
[[nodiscard]] double dot2(std::span<const double> a,
                          std::span<const double> b) noexcept;

/// Plain dot product (the error yardstick).
[[nodiscard]] double dot_naive(std::span<const double> a,
                               std::span<const double> b) noexcept;

/// Dekker FastTwoSum: requires |a| >= |b| (or a == 0).
[[nodiscard]] TwoSumResult fast_two_sum(double a, double b) noexcept;

/// Plain left-to-right summation (the error yardstick).
[[nodiscard]] double sum_naive(std::span<const double> xs) noexcept;

/// Kahan compensated summation (1965): one compensation term; may lose the
/// compensation when a summand exceeds the running sum.
[[nodiscard]] double sum_kahan(std::span<const double> xs) noexcept;

/// Neumaier's improvement (a.k.a. Kahan-Babuska): branches on magnitude so
/// the compensation also survives |x| > |sum|.
[[nodiscard]] double sum_neumaier(std::span<const double> xs) noexcept;

/// Pairwise (cascade) summation: O(log n) error growth by recursive halving
/// (base case 128 summed naively).
[[nodiscard]] double sum_pairwise(std::span<const double> xs) noexcept;

/// Streaming Kahan accumulator (for workloads that cannot materialize the
/// whole array).
class KahanAccumulator {
 public:
  /// Adds one summand.
  void add(double x) noexcept {
    const double y = x - c_;
    const double t = s_ + y;
    c_ = (t - s_) - y;
    s_ = t;
  }

  /// Current compensated sum.
  [[nodiscard]] double value() const noexcept { return s_; }

 private:
  double s_ = 0.0;
  double c_ = 0.0;
};

/// Streaming Neumaier accumulator.
class NeumaierAccumulator {
 public:
  /// Adds one summand.
  void add(double x) noexcept;

  /// Current compensated sum (running sum + accumulated compensation).
  [[nodiscard]] double value() const noexcept { return s_ + c_; }

 private:
  double s_ = 0.0;
  double c_ = 0.0;
};

}  // namespace hpsum
