#include "compensated/compensated.hpp"

#include <cmath>

namespace hpsum {

TwoSumResult two_sum(double a, double b) noexcept {
  const double s = a + b;
  const double ap = s - b;
  const double bp = s - ap;
  const double da = a - ap;
  const double db = b - bp;
  return {s, da + db};
}

TwoSumResult two_product(double a, double b) noexcept {
  const double p = a * b;
  return {p, std::fma(a, b, -p)};
}

double dot2(std::span<const double> a, std::span<const double> b) noexcept {
  double s = 0.0;
  double c = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto prod = two_product(a[i], b[i]);
    const auto sum = two_sum(s, prod.sum);
    s = sum.sum;
    c += sum.err + prod.err;
  }
  return s + c;
}

double dot_naive(std::span<const double> a,
                 std::span<const double> b) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

TwoSumResult fast_two_sum(double a, double b) noexcept {
  const double s = a + b;
  const double err = b - (s - a);
  return {s, err};
}

double sum_naive(std::span<const double> xs) noexcept {
  double s = 0.0;
  for (const double x : xs) s += x;
  return s;
}

double sum_kahan(std::span<const double> xs) noexcept {
  KahanAccumulator acc;
  for (const double x : xs) acc.add(x);
  return acc.value();
}

void NeumaierAccumulator::add(double x) noexcept {
  const double t = s_ + x;
  if (std::fabs(s_) >= std::fabs(x)) {
    c_ += (s_ - t) + x;  // low-order bits of x were lost
  } else {
    c_ += (x - t) + s_;  // low-order bits of s_ were lost
  }
  s_ = t;
}

double sum_neumaier(std::span<const double> xs) noexcept {
  NeumaierAccumulator acc;
  for (const double x : xs) acc.add(x);
  return acc.value();
}

double sum_pairwise(std::span<const double> xs) noexcept {
  constexpr std::size_t kBase = 128;
  if (xs.size() <= kBase) return sum_naive(xs);
  const std::size_t half = xs.size() / 2;
  return sum_pairwise(xs.first(half)) + sum_pairwise(xs.subspan(half));
}

}  // namespace hpsum
