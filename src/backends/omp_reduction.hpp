// OpenMP user-defined reductions over HP types.
//
// The paper's OpenMP experiment hand-rolls per-thread partials; idiomatic
// OpenMP would declare a reduction instead. This macro registers one:
//
//   #include "backends/omp_reduction.hpp"
//   HPSUM_DECLARE_OMP_REDUCTION(HpSum63, hpsum::HpFixed<6, 3>)
//
//   hpsum::HpFixed<6, 3> acc;
//   #pragma omp parallel for reduction(HpSum63 : acc)
//   for (std::int64_t i = 0; i < n; ++i) acc += xs[i];
//
// The result is bit-identical for every thread count and schedule — an HP
// reduction is associative and commutative for real, which is exactly the
// property OpenMP's reduction clause assumes and doubles do not have.
#pragma once

#include "core/hp_fixed.hpp"

// Two-level expansion so type macro arguments expand before stringization.
#define HPSUM_DETAIL_PRAGMA(x) _Pragma(#x)

/// Declares an OpenMP reduction identifier NAME over accumulator type
/// TYPE... (variadic so template types with commas pass through). TYPE
/// must value-initialize to zero and provide operator+= — HpFixed does;
/// each thread's private copy starts from zero and omp_out absorbs them.
#define HPSUM_DECLARE_OMP_REDUCTION(NAME, ...)          \
  HPSUM_DETAIL_PRAGMA(omp declare reduction(            \
      NAME : __VA_ARGS__ : omp_out += omp_in)           \
      initializer(omp_priv = decltype(omp_orig){}))
