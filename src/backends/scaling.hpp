// Strong-scaling drivers and the modeled-time report.
//
// The paper's Figs 5-8 measure wallclock of a p-PE global reduction on real
// multi-core/accelerator hardware. This build host has one core, so a
// measured wallclock with p threads is just serialization noise. Instead
// (DESIGN.md §2) every PE measures its own CPU busy time; the driver
// reports
//
//   modeled_wall(p) = max_p busy_p + merge_time
//
// — the critical path a machine with >= p cores would see — alongside the
// honest measured wallclock. Efficiency in the figure reproductions is
// computed from modeled_wall.
#pragma once

#include <span>
#include <thread>
#include <vector>

#include <omp.h>

#include "engine/engine.hpp"
#include "trace/flight.hpp"
#include "trace/trace.hpp"
#include "util/omp_fence.hpp"
#include "util/timer.hpp"

namespace hpsum::backends {

namespace detail {

/// Folds a finished ScalingPoint's timings into the trace registry once,
/// from the driver thread (never from inside the hot loops). A clock that
/// misbehaves (negative delta, NaN from a bad ratio) must not poison the
/// monotone counters, so the seconds->ns edge saturates via
/// trace::saturating_ns instead of casting raw.
inline void trace_point(double busy_total, double merge_time) noexcept {
  trace::count(trace::Counter::kBackendReductions);
  trace::count(trace::Counter::kBackendBusyNs, trace::saturating_ns(busy_total));
  trace::count(trace::Counter::kBackendMergeNs, trace::saturating_ns(merge_time));
}

}  // namespace detail

/// One strong-scaling data point.
struct ScalingPoint {
  int pes = 1;               ///< processing elements (threads/ranks)
  double value = 0.0;        ///< the reduction result
  double measured_wall = 0;  ///< actual wallclock on this host (s)
  double modeled_wall = 0;   ///< max per-PE busy + merge (s); see above
  double busy_max = 0;       ///< slowest PE's busy time (s)
  double busy_total = 0;     ///< total CPU work across PEs (s)
  double merge_time = 0;     ///< master's partial-sum combine time (s)
};

/// Parallel efficiency of `p` relative to the 1-PE point:
/// E(p) = T(1) / (p * T(p)), on modeled time.
[[nodiscard]] inline double efficiency(const ScalingPoint& p1,
                                       const ScalingPoint& pp) noexcept {
  if (pp.modeled_wall <= 0.0 || pp.pes <= 0) return 0.0;
  return p1.modeled_wall / (static_cast<double>(pp.pes) * pp.modeled_wall);
}

/// Splits `xs` into `p` contiguous, maximally balanced slices.
[[nodiscard]] std::vector<std::span<const double>> partition(
    std::span<const double> xs, int p);

/// std::thread strong-scaling reduction: each of `pes` threads deposits
/// its slice into an engine shard, the caller thread drains the set.
/// This is the driver for the mpisim-style and generic figures. Routing
/// through engine::ShardSet keeps the historical semantics (lane t holds
/// thread t's partial; drain merges lanes in order — bit-identical limbs
/// and status to the old explicit partials vector) while making the
/// running total snapshot-able mid-flight.
template <class Acc>
[[nodiscard]] ScalingPoint run_threads(std::span<const double> xs, int pes) {
  const trace::flight::ReductionScope reduction(xs.size());
  const std::uint64_t rid = reduction.id();
  const auto slices = partition(xs, pes);
  engine::ShardSet<Acc> sink(static_cast<std::size_t>(pes));
  std::vector<double> busy(static_cast<std::size_t>(pes), 0.0);

  util::WallTimer wall;
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(pes));
    for (int t = 0; t < pes; ++t) {
      threads.emplace_back([&, t] {
        trace::flight::set_track("backend", 0, t);
        const trace::flight::Span busy_span(
            trace::flight::EventId::kPeBusy, rid,
            slices[static_cast<std::size_t>(t)].size());
        util::ThreadCpuTimer cpu;
        sink.shard(static_cast<std::size_t>(t))
            .deposit(slices[static_cast<std::size_t>(t)]);
        busy[static_cast<std::size_t>(t)] = cpu.seconds();
      });
    }
  }  // jthreads join

  util::ThreadCpuTimer merge_cpu;
  Acc total;
  {
    const trace::flight::Span merge_span(trace::flight::EventId::kMerge, rid,
                                  static_cast<std::size_t>(pes));
    total = sink.drain();
  }
  const double merge_time = merge_cpu.seconds();

  ScalingPoint out;
  out.pes = pes;
  out.value = total.result();
  out.measured_wall = wall.seconds();
  out.merge_time = merge_time;
  for (const double b : busy) {
    out.busy_max = b > out.busy_max ? b : out.busy_max;
    out.busy_total += b;  // hplint: allow(fp-accumulate) — wallclock stats, not summands
  }
  out.modeled_wall = out.busy_max + merge_time;
  detail::trace_point(out.busy_total, merge_time);
  return out;
}

/// OpenMP strong-scaling reduction (the paper's Fig 5 environment): a
/// `#pragma omp parallel` team of `pes` threads computes per-thread
/// partials; the master reduces them.
template <class Acc>
[[nodiscard]] ScalingPoint run_openmp(std::span<const double> xs, int pes) {
  const trace::flight::ReductionScope reduction(xs.size());
  const std::uint64_t rid = reduction.id();
  const auto slices = partition(xs, pes);
  engine::ShardSet<Acc> sink(static_cast<std::size_t>(pes));
  std::vector<double> busy(static_cast<std::size_t>(pes), 0.0);

  util::WallTimer wall;
  util::OmpRegionFence fence;
  int team = pes;  // written only by the master (thread 0 of the team)
#pragma omp parallel num_threads(pes)
  {
    const int t = omp_get_thread_num();
    if (t == 0) team = omp_get_num_threads();
    {
      trace::flight::set_track("omp", 0, t);
      const trace::flight::Span busy_span(trace::flight::EventId::kPeBusy, rid,
                                   slices[static_cast<std::size_t>(t)].size());
      util::ThreadCpuTimer cpu;
      sink.shard(static_cast<std::size_t>(t))
          .deposit(slices[static_cast<std::size_t>(t)]);
      busy[static_cast<std::size_t>(t)] = cpu.seconds();
    }
    // Last statement of the region: publish this thread's slice reads and
    // shard/busy writes to the master's post-region merge (libgomp's own
    // end-of-region barrier is not TSan-instrumented; see omp_fence.hpp).
    fence.arrive();
  }
  fence.wait(team);

  util::ThreadCpuTimer merge_cpu;
  Acc total;
  {
    const trace::flight::Span merge_span(trace::flight::EventId::kMerge, rid,
                                  static_cast<std::size_t>(pes));
    total = sink.drain();
  }
  const double merge_time = merge_cpu.seconds();

  ScalingPoint out;
  out.pes = pes;
  out.value = total.result();
  out.measured_wall = wall.seconds();
  out.merge_time = merge_time;
  for (const double b : busy) {
    out.busy_max = b > out.busy_max ? b : out.busy_max;
    out.busy_total += b;  // hplint: allow(fp-accumulate) — wallclock stats, not summands
  }
  out.modeled_wall = out.busy_max + merge_time;
  detail::trace_point(out.busy_total, merge_time);
  return out;
}

}  // namespace hpsum::backends
