#include "backends/scaling.hpp"

namespace hpsum::backends {

std::vector<std::span<const double>> partition(std::span<const double> xs,
                                               int p) {
  std::vector<std::span<const double>> slices;
  slices.reserve(static_cast<std::size_t>(p));
  const std::size_t n = xs.size();
  const std::size_t base = n / static_cast<std::size_t>(p);
  const std::size_t extra = n % static_cast<std::size_t>(p);
  std::size_t offset = 0;
  for (int t = 0; t < p; ++t) {
    const std::size_t len = base + (static_cast<std::size_t>(t) < extra ? 1 : 0);
    slices.push_back(xs.subspan(offset, len));
    offset += len;
  }
  return slices;
}

}  // namespace hpsum::backends
