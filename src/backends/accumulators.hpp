// Uniform accumulator adapters over the three summation methods.
//
// The scaling drivers (OpenMP, mpisim, cudasim, phisim) and the bench
// harnesses are templated on this small concept, so every figure's
// three-method comparison runs through identical driver code:
//
//   Acc a;                  // zero partial sum
//   a.accumulate(x);        // add one double
//   a.accumulate(span);     // add a block of doubles (same result, faster)
//   a.merge(other);         // combine partial sums
//   double r = a.result();  // final rounding to double
//   Acc::name();            // display label
//
// The span overload is semantically the element-at-a-time loop (for HP it
// is the bit-identical carry-deferred block fast path); the drivers hand
// each PE's whole slice to it so every method accumulates through its best
// available path.
#pragma once

#include <span>
#include <string>

#include "core/hp_fixed.hpp"
#include "hallberg/hallberg.hpp"

namespace hpsum::backends {

/// Plain double accumulation (the paper's baseline method).
struct DoubleSum {
  double v = 0.0;

  // hplint: allow(fp-accumulate) — this IS the order-sensitive baseline
  void accumulate(double x) noexcept { v += x; }
  void accumulate(std::span<const double> xs) noexcept {
    // hplint: allow(fp-accumulate) — the order-sensitive baseline, blocked
    for (const double x : xs) v += x;
  }
  // hplint: allow(fp-accumulate) — baseline partial-sum merge
  void merge(const DoubleSum& o) noexcept { v += o.v; }
  [[nodiscard]] double result() const noexcept { return v; }
  [[nodiscard]] static std::string name() { return "double"; }
};

/// HP accumulation with a compile-time format.
template <int N, int K>
struct HpSum {
  // Named `hp`, not `v`: hplint tracks double-typed names file-wide, and
  // DoubleSum::v above is a double — a shared name would read as FP
  // accumulation here.
  HpFixed<N, K> hp;

  // operator+=(double) is the scatter-add fast path (hp_kernel.hpp): the
  // mantissa lands directly in the affected limbs, no full-width temp.
  void accumulate(double x) noexcept { hp += x; }
  // The block fast path; bit-identical to the scalar loop, limbs + status.
  void accumulate(std::span<const double> xs) noexcept { hp.accumulate(xs); }
  void merge(const HpSum& o) noexcept { hp += o.hp; }
  [[nodiscard]] double result() const noexcept { return hp.to_double(); }
  [[nodiscard]] static std::string name() {
    return "HP(N=" + std::to_string(N) + ",k=" + std::to_string(K) + ")";
  }
};

/// Hallberg accumulation with a compile-time format.
template <int N, int M>
struct HallbergSum {
  HallbergFixed<N, M> hb;

  void accumulate(double x) noexcept { hb.add(x); }
  void accumulate(std::span<const double> xs) noexcept {
    for (const double x : xs) hb.add(x);
  }
  void merge(const HallbergSum& o) noexcept { hb.add(o.hb); }
  [[nodiscard]] double result() const noexcept { return hb.to_double(); }
  [[nodiscard]] static std::string name() {
    return "Hallberg(N=" + std::to_string(N) + ",M=" + std::to_string(M) + ")";
  }
};

}  // namespace hpsum::backends
