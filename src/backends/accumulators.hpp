// Uniform accumulator adapters over the three summation methods.
//
// The scaling drivers (OpenMP, mpisim, cudasim, phisim) and the bench
// harnesses are templated on this small concept, so every figure's
// three-method comparison runs through identical driver code:
//
//   Acc a;                  // zero partial sum
//   a.accumulate(x);        // add one double
//   a.merge(other);         // combine partial sums
//   double r = a.result();  // final rounding to double
//   Acc::name();            // display label
#pragma once

#include <string>

#include "core/hp_fixed.hpp"
#include "hallberg/hallberg.hpp"

namespace hpsum::backends {

/// Plain double accumulation (the paper's baseline method).
struct DoubleSum {
  double v = 0.0;

  void accumulate(double x) noexcept { v += x; }
  void merge(const DoubleSum& o) noexcept { v += o.v; }
  [[nodiscard]] double result() const noexcept { return v; }
  [[nodiscard]] static std::string name() { return "double"; }
};

/// HP accumulation with a compile-time format.
template <int N, int K>
struct HpSum {
  HpFixed<N, K> v;

  void accumulate(double x) noexcept { v += x; }
  void merge(const HpSum& o) noexcept { v += o.v; }
  [[nodiscard]] double result() const noexcept { return v.to_double(); }
  [[nodiscard]] static std::string name() {
    return "HP(N=" + std::to_string(N) + ",k=" + std::to_string(K) + ")";
  }
};

/// Hallberg accumulation with a compile-time format.
template <int N, int M>
struct HallbergSum {
  HallbergFixed<N, M> v;

  void accumulate(double x) noexcept { v.add(x); }
  void merge(const HallbergSum& o) noexcept { v.add(o.v); }
  [[nodiscard]] double result() const noexcept { return v.to_double(); }
  [[nodiscard]] static std::string name() {
    return "Hallberg(N=" + std::to_string(N) + ",M=" + std::to_string(M) + ")";
  }
};

}  // namespace hpsum::backends
