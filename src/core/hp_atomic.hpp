// HpAtomic<N,K> — lock-free shared HP accumulator.
//
// The paper (§III.B.2) claims HP addition can be made atomic with nothing
// but compare-and-swap: each of the N limb additions is one atomic RMW, the
// carry between limbs is thread-local state. Intermediate states are torn
// across limbs, but because limb-wise addition with deferred carries is
// commutative and associative over Z/2^64N, the final value once all adders
// have finished is exactly the sequential sum.
//
// Status flags stay sticky across threads: every add() ORs the operand's
// flags (e.g. kInexact/kConvertOverflow picked up during double->HP
// conversion) into a shared atomic mask, raises kAddOverflow when the
// top-limb update departs the representable range (the same sign rule the
// sequential adder applies), and load() folds that mask into the returned
// value — so going through the concurrent accumulator never silently drops
// a condition the sequential accumulator would have reported.
//
// Two adder flavors are provided:
//   add()            — CAS loop, the primitive the paper requires (CUDA has
//                      only atomicCAS for 64-bit until fetch-add arrived);
//   add_fetch_add()  — native fetch_add, an ablation (bench/ablate_atomics).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/hp_fixed.hpp"
#include "trace/trace.hpp"
#include "util/annotations.hpp"

namespace hpsum {

/// Thread-safe HP accumulator with the same format as HpFixed<N,K>.
template <int N, int K>
class HpAtomic {
 public:
  using Value = HpFixed<N, K>;

  /// Zero value.
  HpAtomic() {
    for (auto& limb : limbs_) limb.store(0, std::memory_order_relaxed);
  }

  HpAtomic(const HpAtomic&) = delete;
  HpAtomic& operator=(const HpAtomic&) = delete;

  /// Atomically adds an HP value using only compare-and-swap.
  /// Safe to call concurrently from any number of threads. The operand's
  /// sticky flags join the accumulator's shared status.
  HPSUM_ALLOW_UNSIGNED_WRAP
  void add(const Value& v) noexcept {
    or_shared_status(v.status());
    trace::count(trace::Counter::kAtomicCasAdds);
    const auto& b = v.limbs();
    bool carry = false;
    for (int i = N - 1; i >= 0; --i) {
      const util::Limb x = b[i] + static_cast<util::Limb>(carry);
      const bool xwrap = carry && x == 0;  // b[i] was all-ones
      bool sumwrap = false;
      if (x != 0) {
        util::Limb old = limbs_[i].load(std::memory_order_relaxed);
        util::Limb desired = old + x;
        while (!limbs_[i].compare_exchange_weak(old, desired,
                                                std::memory_order_relaxed)) {
          trace::count(trace::Counter::kAtomicCasRetries);
          desired = old + x;
        }
        sumwrap = desired < old;  // unsigned wrap => carry into limb i-1
        if (i == 0) note_top_limb_overflow(old, b[0], desired);
      }
      carry = xwrap || sumwrap;
    }
    // A carry out of limb 0 wraps the full 64N-bit ring exactly as the
    // sequential adder wraps; departures from the representable range are
    // reported by note_top_limb_overflow's sign rule, so the concurrent and
    // sequential paths raise the same sticky kAddOverflow.
  }

  /// Atomically adds a double (converts thread-locally, then add(); any
  /// conversion flags ride along into the shared status).
  void add(double r) noexcept { add(Value(r)); }

  /// Ablation variant of add() using fetch_add instead of a CAS loop.
  HPSUM_ALLOW_UNSIGNED_WRAP
  void add_fetch_add(const Value& v) noexcept {
    or_shared_status(v.status());
    trace::count(trace::Counter::kAtomicFetchAddAdds);
    const auto& b = v.limbs();
    bool carry = false;
    for (int i = N - 1; i >= 0; --i) {
      const util::Limb x = b[i] + static_cast<util::Limb>(carry);
      const bool xwrap = carry && x == 0;
      bool sumwrap = false;
      if (x != 0) {
        const util::Limb old = limbs_[i].fetch_add(x, std::memory_order_relaxed);
        sumwrap = static_cast<util::Limb>(old + x) < old;
        if (i == 0) note_top_limb_overflow(old, b[0], old + x);
      }
      carry = xwrap || sumwrap;
    }
  }

  /// Snapshot of the current value, including the sticky status collected
  /// from every adder so far. Only exact once all concurrent adders have
  /// finished (e.g. after joining threads); mid-flight reads may observe a
  /// sum whose carries are still in adders' local state.
  [[nodiscard]] Value load() const noexcept {
    Value out;
    for (int i = 0; i < N; ++i) {
      out.limbs()[static_cast<std::size_t>(i)] =
          limbs_[i].load(std::memory_order_relaxed);
    }
    out.or_status(status());
    return out;
  }

  /// The shared sticky status on its own (no limb reads).
  [[nodiscard]] HpStatus status() const noexcept {
    return static_cast<HpStatus>(status_.load(std::memory_order_relaxed));
  }

  /// Resets to zero and clears the shared status. Must not race with adders.
  void clear() noexcept {
    for (auto& limb : limbs_) limb.store(0, std::memory_order_relaxed);
    status_.store(0, std::memory_order_relaxed);
  }

 private:
  /// add_impl's sign rule (§III.A) applied to this adder's top-limb update:
  /// a same-sign accumulator and operand whose sum has the opposite sign
  /// means the running total left the representable range — raise the same
  /// sticky kAddOverflow the sequential adder raises. `old`/`next` are the
  /// observed top limb before/after the update; in uncontended (or joined)
  /// runs they equal the sequential adder's operands, so both paths report
  /// identically. Under contention the observation is of some valid
  /// interleaving — best-effort, never UB, never a dropped sequentially-
  /// detectable wrap.
  HPSUM_ALLOW_UNSIGNED_WRAP
  void note_top_limb_overflow(util::Limb old, util::Limb b0,
                              util::Limb next) noexcept {
    const bool sa = (old >> 63) != 0;
    const bool sb = (b0 >> 63) != 0;
    const bool sr = (next >> 63) != 0;
    if (sa == sb && sr != sa) {
      trace::count_status(HpStatus::kAddOverflow);
      or_shared_status(HpStatus::kAddOverflow);
    }
  }

  void or_shared_status(HpStatus s) noexcept {
    if (s != HpStatus::kOk) {
      status_.fetch_or(static_cast<std::uint8_t>(s),
                       std::memory_order_relaxed);
    }
  }

  std::atomic<util::Limb> limbs_[N];
  std::atomic<std::uint8_t> status_{0};
};

}  // namespace hpsum
