// HpAtomic<N,K> — lock-free shared HP accumulator.
//
// The paper (§III.B.2) claims HP addition can be made atomic with nothing
// but compare-and-swap: each of the N limb additions is one atomic RMW, the
// carry between limbs is thread-local state. Intermediate states are torn
// across limbs, but because limb-wise addition with deferred carries is
// commutative and associative over Z/2^64N, the final value once all adders
// have finished is exactly the sequential sum.
//
// Two adder flavors are provided:
//   add()            — CAS loop, the primitive the paper requires (CUDA has
//                      only atomicCAS for 64-bit until fetch-add arrived);
//   add_fetch_add()  — native fetch_add, an ablation (bench/ablate_atomics).
#pragma once

#include <atomic>

#include "core/hp_fixed.hpp"

namespace hpsum {

/// Thread-safe HP accumulator with the same format as HpFixed<N,K>.
template <int N, int K>
class HpAtomic {
 public:
  using Value = HpFixed<N, K>;

  /// Zero value.
  HpAtomic() {
    for (auto& limb : limbs_) limb.store(0, std::memory_order_relaxed);
  }

  HpAtomic(const HpAtomic&) = delete;
  HpAtomic& operator=(const HpAtomic&) = delete;

  /// Atomically adds an HP value using only compare-and-swap.
  /// Safe to call concurrently from any number of threads.
  void add(const Value& v) noexcept {
    const auto& b = v.limbs();
    bool carry = false;
    for (int i = N - 1; i >= 0; --i) {
      const util::Limb x = b[i] + static_cast<util::Limb>(carry);
      const bool xwrap = carry && x == 0;  // b[i] was all-ones
      bool sumwrap = false;
      if (x != 0) {
        util::Limb old = limbs_[i].load(std::memory_order_relaxed);
        util::Limb desired = old + x;
        while (!limbs_[i].compare_exchange_weak(old, desired,
                                                std::memory_order_relaxed)) {
          desired = old + x;
        }
        sumwrap = desired < old;  // unsigned wrap => carry into limb i-1
      }
      carry = xwrap || sumwrap;
    }
    // A carry out of limb 0 means the running total wrapped the full 64N-bit
    // ring; it is dropped exactly as in the sequential adder (and is
    // detectable after the fact by the caller's range reasoning).
  }

  /// Atomically adds a double (converts thread-locally, then add()).
  void add(double r) noexcept { add(Value(r)); }

  /// Ablation variant of add() using fetch_add instead of a CAS loop.
  void add_fetch_add(const Value& v) noexcept {
    const auto& b = v.limbs();
    bool carry = false;
    for (int i = N - 1; i >= 0; --i) {
      const util::Limb x = b[i] + static_cast<util::Limb>(carry);
      const bool xwrap = carry && x == 0;
      bool sumwrap = false;
      if (x != 0) {
        const util::Limb old = limbs_[i].fetch_add(x, std::memory_order_relaxed);
        sumwrap = static_cast<util::Limb>(old + x) < old;
      }
      carry = xwrap || sumwrap;
    }
  }

  /// Snapshot of the current value. Only exact once all concurrent adders
  /// have finished (e.g. after joining threads); mid-flight reads may
  /// observe a sum whose carries are still in adders' local state.
  [[nodiscard]] Value load() const noexcept {
    Value out;
    for (int i = 0; i < N; ++i) {
      out.limbs()[static_cast<std::size_t>(i)] =
          limbs_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  /// Resets to zero. Must not race with adders.
  void clear() noexcept {
    for (auto& limb : limbs_) limb.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<util::Limb> limbs_[N];
};

}  // namespace hpsum
