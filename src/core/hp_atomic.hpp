// HpAtomic<N,K> — lock-free shared HP accumulator.
//
// The paper (§III.B.2) claims HP addition can be made atomic with nothing
// but compare-and-swap: each of the N limb additions is one atomic RMW, the
// carry between limbs is thread-local state. Intermediate states are torn
// across limbs, but because limb-wise addition with deferred carries is
// commutative and associative over Z/2^64N, the final value once all adders
// have finished is exactly the sequential sum.
//
// Status flags stay sticky across threads: every add() ORs the operand's
// flags (e.g. kInexact/kConvertOverflow picked up during double->HP
// conversion) into a shared atomic mask, raises kAddOverflow when the
// top-limb update departs the representable range (the same sign rule the
// sequential adder applies), and load() folds that mask into the returned
// value — so going through the concurrent accumulator never silently drops
// a condition the sequential accumulator would have reported.
//
// Two adder flavors are provided:
//   add()            — CAS loop, the primitive the paper requires (CUDA has
//                      only atomicCAS for 64-bit until fetch-add arrived);
//   add_fetch_add()  — native fetch_add, an ablation (bench/ablate_atomics).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/hp_fixed.hpp"
#include "trace/trace.hpp"
#include "util/annotations.hpp"

namespace hpsum {

/// Thread-safe HP accumulator with the same format as HpFixed<N,K>.
template <int N, int K>
class HpAtomic {
 public:
  using Value = HpFixed<N, K>;

  /// Zero value.
  HpAtomic() {
    for (auto& limb : limbs_) limb.store(0, std::memory_order_relaxed);
  }

  HpAtomic(const HpAtomic&) = delete;
  HpAtomic& operator=(const HpAtomic&) = delete;

  /// Atomically adds an HP value using only compare-and-swap.
  /// Safe to call concurrently from any number of threads. The operand's
  /// sticky flags join the accumulator's shared status. The carry loop and
  /// the top-limb sign rule are kernel::atomic_add; only the CAS-loop
  /// fetch-add primitive (and its retry accounting) lives here.
  void add(const Value& v) noexcept {
    or_shared_status(v.status());
    trace::count(trace::Counter::kAtomicCasAdds);
    std::uint64_t retries = 0;
    or_shared_status(kernel::atomic_add(
        [this, &retries](int i, util::Limb x) noexcept {
          util::Limb old = limbs_[i].load(std::memory_order_relaxed);
          util::Limb desired = detail::wrap_add(old, x);
          while (!limbs_[i].compare_exchange_weak(
              old, desired, std::memory_order_relaxed,
              std::memory_order_relaxed)) {
            trace::count(trace::Counter::kAtomicCasRetries);
            ++retries;
            desired = detail::wrap_add(old, x);
          }
          return old;
        },
        v.limbs().data(), N));
    // Per-add distribution alongside the process total: contention shows
    // up as the tail of this histogram long before the mean total moves.
    trace::observe(trace::Hist::kAtomicCasRetriesPerAdd, retries);
    // A carry out of limb 0 wraps the full 64N-bit ring exactly as the
    // sequential adder wraps; departures from the representable range are
    // reported by kernel::atomic_add's sign rule, so the concurrent and
    // sequential paths raise the same sticky kAddOverflow.
  }

  /// Atomically adds a double (converts thread-locally, then add(); any
  /// conversion flags ride along into the shared status).
  void add(double r) noexcept { add(Value(r)); }

  /// Ablation variant of add() using fetch_add instead of a CAS loop.
  void add_fetch_add(const Value& v) noexcept {
    or_shared_status(v.status());
    trace::count(trace::Counter::kAtomicFetchAddAdds);
    or_shared_status(kernel::atomic_add(
        [this](int i, util::Limb x) noexcept {
          return limbs_[i].fetch_add(x, std::memory_order_relaxed);
        },
        v.limbs().data(), N));
  }

  /// Snapshot of the current value, including the sticky status collected
  /// from every adder so far. Only exact once all concurrent adders have
  /// finished (e.g. after joining threads); mid-flight reads may observe a
  /// sum whose carries are still in adders' local state.
  [[nodiscard]] Value load() const noexcept {
    Value out;
    for (int i = 0; i < N; ++i) {
      out.limbs()[static_cast<std::size_t>(i)] =
          limbs_[i].load(std::memory_order_relaxed);
    }
    out.or_status(status());
    return out;
  }

  /// The shared sticky status on its own (no limb reads).
  [[nodiscard]] HpStatus status() const noexcept {
    return static_cast<HpStatus>(status_.load(std::memory_order_relaxed));
  }

  /// Resets to zero and clears the shared status. Must not race with adders.
  void clear() noexcept {
    for (auto& limb : limbs_) limb.store(0, std::memory_order_relaxed);
    status_.store(0, std::memory_order_relaxed);
  }

 private:
  void or_shared_status(HpStatus s) noexcept {
    if (s != HpStatus::kOk) {
      status_.fetch_or(static_cast<std::uint8_t>(s),
                       std::memory_order_relaxed);
    }
  }

  std::atomic<util::Limb> limbs_[N];
  std::atomic<std::uint8_t> status_{0};
};

}  // namespace hpsum
