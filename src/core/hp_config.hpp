// HP format configuration (the paper's N and k parameters).
//
// An HP number is N unsigned 64-bit limbs in two's complement, of which the
// last k hold the fraction (eq. 2):
//
//   r = sum_{i=0}^{N-1} a_i * 2^(64*(N-k-1-i))
//
// All bits carry value except bit 63 of limb 0, the sign bit. The tunable k
// "places precision where it is needed": N-k limbs of whole-number range vs
// k limbs of fractional resolution. Table 1 of the paper is regenerated from
// the formulas here (bench/table1_ranges).
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace hpsum {

/// Hard cap on limbs per HP number (2048 bits). Keeps scratch buffers on
/// the stack and bounds the float-scaling conversion path's exponents.
inline constexpr int kMaxLimbs = 32;

/// Runtime HP format descriptor. For compile-time formats see HpFixed<N,K>.
struct HpConfig {
  int n = 6;  ///< Total 64-bit limbs (paper: N).
  int k = 3;  ///< Fractional limbs, 0 <= k <= n (paper: k).

  friend constexpr bool operator==(const HpConfig&, const HpConfig&) = default;
};

/// Validates 1 <= n and 0 <= k <= n; throws std::invalid_argument otherwise.
constexpr void validate(const HpConfig& cfg) {
  if (cfg.n < 1 || cfg.k < 0 || cfg.k > cfg.n) {
    throw std::invalid_argument("HpConfig requires n >= 1 and 0 <= k <= n");
  }
}

/// Precision bits: every bit stores value except the single sign bit.
/// (Contrast Hallberg: N*M payload bits out of 64*N stored.)
constexpr int precision_bits(const HpConfig& cfg) noexcept {
  return 64 * cfg.n - 1;
}

/// Largest representable magnitude, 2^(64*(n-k)-1), as a double.
/// (Table 1 "Max Range"; the true positive max is one lsb below this.)
inline double max_range(const HpConfig& cfg) noexcept {
  return std::ldexp(1.0, 64 * (cfg.n - cfg.k) - 1);
}

/// Smallest positive representable value, 2^(-64k) (Table 1 "Smallest").
inline double smallest(const HpConfig& cfg) noexcept {
  return std::ldexp(1.0, -64 * cfg.k);
}

/// Binary exponent of the most significant value bit: range is
/// (-2^e, 2^e) with e = 64*(n-k)-1.
constexpr int max_exponent(const HpConfig& cfg) noexcept {
  return 64 * (cfg.n - cfg.k) - 1;
}

/// Binary exponent of the least significant value bit: -64*k.
constexpr int min_exponent(const HpConfig& cfg) noexcept {
  return -64 * cfg.k;
}

}  // namespace hpsum
