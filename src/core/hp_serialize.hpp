// Canonical, versioned, endian-independent serialization of HP values.
//
// HpDyn::to_bytes is a raw native-order limb image — fine for in-process
// message passing, wrong for files that may be read on another machine.
// This format is explicit: a fixed header (magic, version, N, k, sticky
// status) followed by the limbs most-significant-first, each encoded
// little-endian. Two machines of any endianness exchange HP values (and
// their accumulated status flags) losslessly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/hp_dyn.hpp"

namespace hpsum {

/// Serialized size of a value with config `cfg`.
[[nodiscard]] constexpr std::size_t serialized_size(const HpConfig& cfg) noexcept {
  return 8 + static_cast<std::size_t>(cfg.n) * 8;  // header + limbs
}

/// Encodes `v` (value, format, sticky status) into the canonical format.
[[nodiscard]] std::vector<std::byte> serialize(const HpDyn& v);

/// Decodes a canonical image. Throws std::invalid_argument on bad magic,
/// unsupported version, corrupt header, or size mismatch.
[[nodiscard]] HpDyn deserialize(std::span<const std::byte> bytes);

}  // namespace hpsum
