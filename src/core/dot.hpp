// Exact, order-invariant dot products (extension of the paper's method).
//
// The paper treats summation; the obvious next reduction a scientific code
// needs reproducible is the dot product (force virials, energies, BLAS-1).
// The composition is classical: the FMA error-free transformation splits
// each product a_i*b_i into fl(a_i*b_i) + err_i EXACTLY, and both halves go
// into an HP accumulator. The result is the mathematically exact dot
// product rounded once — and bit-identical for every evaluation order,
// which neither naive dot nor compensated Dot2 can promise.
//
// Range note: products of doubles span up to ~2^±2046, wider than any HP
// format; size N,k for |a_i*b_i| (status flags report violations, and the
// subnormal-product corner where FMA's error term itself rounds is flagged
// kInexact).
#pragma once

#include <span>

#include "compensated/compensated.hpp"
#include "core/hp_dyn.hpp"
#include "core/hp_fixed.hpp"

namespace hpsum {

namespace detail {
/// Products buffered per block deposit in dot_hp (sum,err pairs, so the
/// double buffer is 2x this). Small enough to stay L1-resident, large
/// enough to amortize the block flush. docs/KERNELS.md discusses tuning.
inline constexpr std::size_t kDotChunk = 128;
}  // namespace detail

/// Exact dot product into a compile-time HP format. The (fl, err) halves of
/// each product are staged into a small buffer and deposited through the
/// carry-deferred block path in the same order the scalar loop would add
/// them (sum, err, sum, err, ...), so the result is bit-identical to the
/// element-at-a-time version — limbs and sticky status.
template <int N, int K>
[[nodiscard]] HpFixed<N, K> dot_hp(std::span<const double> a,
                                   std::span<const double> b) noexcept {
  BlockAccumulator<N, K> blk;
  double buf[2 * detail::kDotChunk];
  std::size_t fill = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto p = two_product(a[i], b[i]);
    buf[fill++] = p.sum;
    buf[fill++] = p.err;
    if (fill == 2 * detail::kDotChunk) {
      blk.accumulate(std::span<const double>(buf, fill));
      fill = 0;
    }
  }
  if (fill != 0) blk.accumulate(std::span<const double>(buf, fill));
  return HpFixed<N, K>(blk);
}

/// Exact dot product into a runtime HP format.
[[nodiscard]] HpDyn dot_hp(std::span<const double> a,
                           std::span<const double> b, HpConfig cfg);

}  // namespace hpsum
