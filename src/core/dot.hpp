// Exact, order-invariant dot products (extension of the paper's method).
//
// The paper treats summation; the obvious next reduction a scientific code
// needs reproducible is the dot product (force virials, energies, BLAS-1).
// The composition is classical: the FMA error-free transformation splits
// each product a_i*b_i into fl(a_i*b_i) + err_i EXACTLY, and both halves go
// into an HP accumulator. The result is the mathematically exact dot
// product rounded once — and bit-identical for every evaluation order,
// which neither naive dot nor compensated Dot2 can promise.
//
// Range note: products of doubles span up to ~2^±2046, wider than any HP
// format; size N,k for |a_i*b_i| (status flags report violations, and the
// subnormal-product corner where FMA's error term itself rounds is flagged
// kInexact).
#pragma once

#include <span>

#include "compensated/compensated.hpp"
#include "core/hp_dyn.hpp"
#include "core/hp_fixed.hpp"

namespace hpsum {

/// Exact dot product into a compile-time HP format.
template <int N, int K>
[[nodiscard]] HpFixed<N, K> dot_hp(std::span<const double> a,
                                   std::span<const double> b) noexcept {
  HpFixed<N, K> acc;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto p = two_product(a[i], b[i]);
    acc += p.sum;
    acc += p.err;
  }
  return acc;
}

/// Exact dot product into a runtime HP format.
[[nodiscard]] HpDyn dot_hp(std::span<const double> a,
                           std::span<const double> b, HpConfig cfg);

}  // namespace hpsum
