#include "core/dot.hpp"

namespace hpsum {

HpDyn dot_hp(std::span<const double> a, std::span<const double> b,
             HpConfig cfg) {
  HpDyn acc(cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto p = two_product(a[i], b[i]);
    acc += p.sum;
    acc += p.err;
  }
  return acc;
}

}  // namespace hpsum
