#include "core/dot.hpp"

namespace hpsum {

HpDyn dot_hp(std::span<const double> a, std::span<const double> b,
             HpConfig cfg) {
  // Same chunked block-deposit staging as the template overload: products'
  // (fl, err) halves enter the accumulator in the scalar loop's order, so
  // the result is bit-identical to element-at-a-time adds.
  HpDyn acc(cfg);
  double buf[2 * detail::kDotChunk];
  std::size_t fill = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto p = two_product(a[i], b[i]);
    buf[fill++] = p.sum;
    buf[fill++] = p.err;
    if (fill == 2 * detail::kDotChunk) {
      acc.accumulate(std::span<const double>(buf, fill));
      fill = 0;
    }
  }
  if (fill != 0) acc.accumulate(std::span<const double>(buf, fill));
  return acc;
}

}  // namespace hpsum
