#include "core/hp_serialize.hpp"

#include <stdexcept>

namespace hpsum {

namespace {
constexpr std::byte kMagic0{0x48};  // 'H'
constexpr std::byte kMagic1{0x50};  // 'P'
constexpr std::byte kVersion{1};

void put_u64_le(std::byte* out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::byte>(v >> (8 * i));
  }
}

std::uint64_t get_u64_le(const std::byte* in) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}
}  // namespace

std::vector<std::byte> serialize(const HpDyn& v) {
  const HpConfig cfg = v.config();
  std::vector<std::byte> out(serialized_size(cfg));
  out[0] = kMagic0;
  out[1] = kMagic1;
  out[2] = kVersion;
  out[3] = static_cast<std::byte>(cfg.n);
  out[4] = static_cast<std::byte>(cfg.k);
  out[5] = static_cast<std::byte>(v.status());
  out[6] = std::byte{0};  // reserved
  out[7] = std::byte{0};  // reserved
  const auto limbs = v.limbs();
  for (std::size_t i = 0; i < limbs.size(); ++i) {
    put_u64_le(out.data() + 8 + 8 * i, limbs[i]);
  }
  return out;
}

HpDyn deserialize(std::span<const std::byte> bytes) {
  if (bytes.size() < 8 || bytes[0] != kMagic0 || bytes[1] != kMagic1) {
    throw std::invalid_argument("hp deserialize: bad magic");
  }
  if (bytes[2] != kVersion) {
    throw std::invalid_argument("hp deserialize: unsupported version");
  }
  const HpConfig cfg{static_cast<int>(bytes[3]), static_cast<int>(bytes[4])};
  if (cfg.n < 1 || cfg.n > kMaxLimbs || cfg.k < 0 || cfg.k > cfg.n) {
    throw std::invalid_argument("hp deserialize: corrupt header");
  }
  if (bytes.size() != serialized_size(cfg)) {
    throw std::invalid_argument("hp deserialize: size mismatch");
  }
  // The status byte must contain only defined flags: ORing raw input into
  // the sticky mask would let corrupt data plant undefined bits that then
  // stick forever (and survive re-serialization). Reject, don't clear —
  // unknown bits mean the image is from a future version or damaged.
  const auto raw_status = static_cast<std::uint8_t>(bytes[5]);
  if ((raw_status & ~kHpStatusMask) != 0) {
    throw std::invalid_argument("hp deserialize: undefined status bits");
  }
  HpDyn v(cfg);
  const auto limbs = v.limbs();
  for (std::size_t i = 0; i < limbs.size(); ++i) {
    limbs[i] = get_u64_le(bytes.data() + 8 + 8 * i);
  }
  v.or_status(static_cast<HpStatus>(raw_status));
  return v;
}

}  // namespace hpsum
