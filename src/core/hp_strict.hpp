// HpStrict — fail-fast accumulation policy.
//
// HpFixed reports exceptional conditions through sticky flags, which suits
// multimillion-element hot loops (check once at the end). Some callers
// want the opposite contract: stop at the first bad operation, with the
// accumulator left untouched (strong exception guarantee), e.g. when each
// summand comes from external input. HpStrict wraps HpFixed with that
// policy; Strictness::kExact additionally rejects summands that would
// truncate below the lsb.
#pragma once

#include <stdexcept>
#include <string>

#include "core/hp_fixed.hpp"

namespace hpsum {

/// Thrown by HpStrict on a rejected operation; carries the status mask.
class HpRangeError : public std::range_error {
 public:
  explicit HpRangeError(HpStatus status)
      : std::range_error("hpsum: " + hpsum::to_string(status)),
        status_(status) {}

  [[nodiscard]] HpStatus status() const noexcept { return status_; }

 private:
  HpStatus status_;
};

/// What HpStrict rejects.
enum class Strictness {
  kNoOverflow,  ///< throw on any overflow; allow sub-lsb truncation
  kExact,       ///< throw on overflow AND on any inexact conversion
};

/// Fail-fast exact accumulator. Every mutating operation either succeeds
/// completely or throws HpRangeError leaving the value unchanged.
template <int N, int K>
class HpStrict {
 public:
  using Value = HpFixed<N, K>;

  explicit HpStrict(Strictness strictness = Strictness::kNoOverflow) noexcept
      : strictness_(strictness) {}

  /// Adds a double; throws HpRangeError (value unchanged) on violation.
  HpStrict& operator+=(double r) {
    Value next = value_;
    next += r;
    commit(next);
    return *this;
  }

  /// Subtracts a double with the same contract.
  HpStrict& operator-=(double r) { return *this += -r; }

  /// Merges another strict accumulator's value.
  HpStrict& operator+=(const HpStrict& other) {
    Value next = value_;
    next += other.value_;
    commit(next);
    return *this;
  }

  /// The accumulated value (flags always clean by construction).
  [[nodiscard]] const Value& value() const noexcept { return value_; }

  /// Rounds to the nearest double.
  [[nodiscard]] double to_double() const noexcept { return value_.to_double(); }

  /// Exact decimal rendering.
  [[nodiscard]] std::string to_decimal_string(std::size_t max_frac_digits = 0) const {
    return value_.to_decimal_string(max_frac_digits);
  }

  [[nodiscard]] Strictness strictness() const noexcept { return strictness_; }

 private:
  void commit(const Value& next) {
    const HpStatus st = next.status();
    const bool bad = any_overflow(st) ||
                     (strictness_ == Strictness::kExact &&
                      has(st, HpStatus::kInexact));
    if (bad) throw HpRangeError(st);
    value_ = next;
    value_.clear_status();
  }

  Value value_;
  Strictness strictness_;
};

}  // namespace hpsum
