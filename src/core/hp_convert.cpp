#include "core/hp_convert.hpp"

#include <cassert>

namespace hpsum {

HpStatus hp_from_double(double r, util::LimbSpan limbs,
                        const HpConfig& cfg) noexcept {
  assert(limbs.size() == static_cast<std::size_t>(cfg.n));
  // The float-scaling path (Listing 1) needs 64*(n-k-1) within double
  // exponent range; wider formats take the exact bit-placement path.
  if (cfg.n <= 16) {
    return detail::from_double_impl(r, limbs.data(), cfg.n, cfg.k);
  }
  return detail::from_double_exact(r, limbs.data(), cfg.n, cfg.k);
}

HpStatus hp_from_double_exact(double r, util::LimbSpan limbs,
                              const HpConfig& cfg) noexcept {
  assert(limbs.size() == static_cast<std::size_t>(cfg.n));
  return detail::from_double_exact(r, limbs.data(), cfg.n, cfg.k);
}

HpStatus hp_from_long_double(long double r, util::LimbSpan limbs,
                             const HpConfig& cfg) noexcept {
  assert(limbs.size() == static_cast<std::size_t>(cfg.n));
  return detail::from_long_double_exact(r, limbs.data(), cfg.n, cfg.k);
}

HpStatus hp_to_double(util::ConstLimbSpan limbs, const HpConfig& cfg,
                      double* out) noexcept {
  assert(limbs.size() == static_cast<std::size_t>(cfg.n));
  return detail::to_double_impl(limbs.data(), cfg.n, cfg.k, out);
}

}  // namespace hpsum
