// hp_kernel_simd_avx2.cpp — the AVX2 lane decomposer. The ONLY translation
// unit compiled with -mavx2 (CMake scopes the flag to this file), so AVX2
// instructions can never leak into code that runs before the dispatcher's
// CPU check. Same lane math as the GENERIC decomposer in hp_kernel_simd.cpp,
// spelled in intrinsics: 4 x u64 lanes, two steps per kWidth batch, with
// the variable 64-bit shifts (vpsllvq/vpsrlvq) that the mantissa split
// needs and baseline x86-64 lacks. The shared driver and the bit-identity
// argument live in hp_kernel_simd_deposit.hpp.

#include "core/hp_kernel_simd.hpp"

#ifndef HPSUM_SIMD_HAVE_AVX2
#define HPSUM_SIMD_HAVE_AVX2 0
#endif

#if HPSUM_SIMD_HAVE_AVX2

#include <immintrin.h>

#include "core/hp_kernel.hpp"
#include "core/hp_kernel_simd_deposit.hpp"

namespace hpsum::kernel::simd::detail {

namespace {

/// Sums the four 64-bit lanes of `v` into one scalar, exactly, given every
/// lane is below 2^62 (the callers' lanes are below 2^56): two paddq steps
/// cannot wrap.
[[nodiscard]] inline std::uint64_t hsum_epi64(__m256i v) noexcept {
  const __m128i s =
      _mm_add_epi64(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  const __m128i t = _mm_add_epi64(s, _mm_unpackhi_epi64(s, s));
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(t));
}

/// Intrinsics twin of GenericDecompose. The window test uses strict
/// compares on shifted bounds (AVX2 has no 64-bit >=): be >= be_lo becomes
/// be > be_lo-1, be <= be_hi becomes be_hi+1 > be — all values are small
/// positive integers, so the +-1 never wraps. pmax, the uniformity test,
/// and the four plane-delta sums all stay in the vector domain — no
/// per-lane extraction on the hot path. For pmax, the biased exponent fits
/// 32 bits, so an epu32 max over the 64-bit lanes — whose high halves are
/// zero — is exact. For the lo-word sums, each lane is split at bit 32 and
/// the halves are summed separately (eight 32-bit pieces cannot wrap a
/// 64-bit lane), then recombined in U128; the hi straddle words are below
/// 2^53, so they sum directly.
struct Avx2Decompose {
  void operator()(const double* x, const Window& w,
                  LaneBatch& b) const noexcept {
    const __m256i belo = _mm256_set1_epi64x(w.be_lo - 1);
    const __m256i behi = _mm256_set1_epi64x(w.be_hi + 1);
    const __m256i pbias = _mm256_set1_epi64x(w.pbias);
    const __m256i mask52 =
        _mm256_set1_epi64x(static_cast<long long>(kMask52));
    const __m256i bit52 = _mm256_set1_epi64x(static_cast<long long>(kBit52));
    const __m256i c63 = _mm256_set1_epi64x(63);
    const __m256i emask = _mm256_set1_epi64x(0x7FF);
    const __m256i zero = _mm256_setzero_si256();
    __m256i okacc = _mm256_set1_epi64x(-1);
    __m256i bemax = zero;
    __m256i lq01[2];
    __m256i lop01[2];
    __m256i lon01[2];
    __m256i hip01[2];
    __m256i hin01[2];
    for (int h = 0; h < kWidth; h += 4) {
      const __m256i bits =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + h));
      const __m256i be =
          _mm256_and_si256(_mm256_srli_epi64(bits, 52), emask);
      const __m256i ok = _mm256_and_si256(_mm256_cmpgt_epi64(be, belo),
                                          _mm256_cmpgt_epi64(behi, be));
      const __m256i m53 =
          _mm256_or_si256(_mm256_and_si256(bits, mask52), bit52);
      const __m256i p = _mm256_add_epi64(be, pbias);
      const __m256i off = _mm256_and_si256(p, c63);
      const __m256i lov = _mm256_sllv_epi64(m53, off);
      const __m256i hiv = _mm256_srlv_epi64(_mm256_srli_epi64(m53, 1),
                                            _mm256_sub_epi64(c63, off));
      // All-ones for negative lanes; sign-split the words so the fold and
      // the non-uniform per-lane path are branch-free on the sign.
      const __m256i negm = _mm256_cmpgt_epi64(zero, bits);
      const __m256i lqv = _mm256_srli_epi64(p, 6);
      const __m256i lopv = _mm256_andnot_si256(negm, lov);
      const __m256i lonv = _mm256_and_si256(negm, lov);
      const __m256i hipv = _mm256_andnot_si256(negm, hiv);
      const __m256i hinv = _mm256_and_si256(negm, hiv);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(b.lop + h), lopv);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(b.lon + h), lonv);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(b.hip + h), hipv);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(b.hin + h), hinv);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(b.lq + h), lqv);
      okacc = _mm256_and_si256(okacc, ok);
      bemax = _mm256_max_epu32(bemax, be);
      const int half = h / 4;
      lq01[half] = lqv;
      lop01[half] = lopv;
      lon01[half] = lonv;
      hip01[half] = hipv;
      hin01[half] = hinv;
    }
    b.all_fast = _mm256_movemask_epi8(okacc) == -1;
    // Horizontal epu32 max (high 32-bit halves are zero, so they never win),
    // then back to the signed lsb position.
    __m128i m = _mm_max_epu32(_mm256_castsi256_si128(bemax),
                              _mm256_extracti128_si256(bemax, 1));
    m = _mm_max_epu32(m, _mm_shuffle_epi32(m, 0x4E));
    m = _mm_max_epu32(m, _mm_shuffle_epi32(m, 0xB1));
    b.pmax = _mm_cvtsi128_si32(m) + w.pbias;
    // uniform <=> every lq lane equals lane 0 of the first half.
    const __m256i lq0 = _mm256_permute4x64_epi64(lq01[0], 0x00);
    const __m256i eq = _mm256_and_si256(_mm256_cmpeq_epi64(lq01[0], lq0),
                                        _mm256_cmpeq_epi64(lq01[1], lq0));
    b.uniform = _mm256_movemask_epi8(eq) == -1;
    if (b.all_fast && b.uniform) {
      const __m256i m32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
      const auto fold_lo = [&](__m256i h0, __m256i h1) -> U128 {
        const __m256i lo32 = _mm256_add_epi64(_mm256_and_si256(h0, m32),
                                              _mm256_and_si256(h1, m32));
        const __m256i hi32 = _mm256_add_epi64(_mm256_srli_epi64(h0, 32),
                                              _mm256_srli_epi64(h1, 32));
        return static_cast<U128>(hsum_epi64(lo32)) +
               (static_cast<U128>(hsum_epi64(hi32)) << 32);
      };
      b.sum_lo[0] = fold_lo(lop01[0], lop01[1]);
      b.sum_lo[1] = fold_lo(lon01[0], lon01[1]);
      b.sum_hi[0] = hsum_epi64(_mm256_add_epi64(hip01[0], hip01[1]));
      b.sum_hi[1] = hsum_epi64(_mm256_add_epi64(hin01[0], hin01[1]));
    }
  }
};

}  // namespace

[[nodiscard]] HpStatus accumulate_avx2(util::Limb* a, U128* pos, U128* neg,
                                       int n, int k, int& bound_exp,
                                       int& pending,
                                       std::span<const double> xs) noexcept {
  return accumulate_batches(a, pos, neg, n, k, bound_exp, pending, xs,
                            Avx2Decompose{});
}

}  // namespace hpsum::kernel::simd::detail

#endif  // HPSUM_SIMD_HAVE_AVX2
