// hp_kernel_simd_deposit — the ISA-independent half of the vectorized block
// deposit: the per-batch fast-lane gate, the conservative bound update, and
// the plane scatter. The two translation units (hp_kernel_simd.cpp with GCC
// vector extensions, hp_kernel_simd_avx2.cpp with -mavx2 intrinsics) each
// provide only a lane decomposer; everything that decides WHETHER a batch
// may be vector-deposited — and therefore everything the bit-identity
// argument rests on — lives here, once.
//
// Internal header: included only by the hp_kernel_simd*.cpp translation
// units. Not installed, not part of the kernel facade.
#pragma once

#include <cstdint>
#include <span>

#include "core/hp_kernel.hpp"
#include "core/hp_kernel_simd.hpp"
#include "trace/trace.hpp"
#include "util/limbs.hpp"

namespace hpsum::kernel::simd::detail {

inline constexpr std::uint64_t kMask52 = (std::uint64_t{1} << 52) - 1;
inline constexpr std::uint64_t kBit52 = std::uint64_t{1} << 52;

/// One decomposed batch of kWidth lanes, already sign-split: a positive
/// lane has its limb words in lop/hip and zeros in lon/hin, a negative
/// lane the reverse — so the driver's fold never branches or indexes on
/// the sign, it just sums four independent streams. The decomposer fills
/// every array unconditionally (slow lanes hold garbage); `all_fast` is
/// the only field that says whether the rest may be trusted, except
/// `pmax`, which is exact whenever all_fast is true and otherwise merely
/// small (|pmax| <= 2123), so arithmetic on it never overflows.
struct LaneBatch {
  std::uint64_t lop[kWidth];  ///< limb-li word, positive lanes (else 0)
  std::uint64_t lon[kWidth];  ///< limb-li word, negative lanes (else 0)
  std::uint64_t hip[kWidth];  ///< straddle word for limb li-1, positive
  std::uint64_t hin[kWidth];  ///< straddle word for limb li-1, negative
  std::uint64_t lq[kWidth];   ///< p >> 6: the lsb's limb offset from the bottom
  /// Batch-level plane deltas, filled ONLY when all_fast && uniform:
  /// sum_lo[s] = sum of the lo words of sign s (0 positive, 1 negative),
  /// sum_hi[s] likewise for the straddle words — exactly what the scalar
  /// loop would add to slots li+1 and li, pre-summed (a kWidth-term sum of
  /// 64-bit words sits far below the U128 ceiling). The AVX2 decomposer
  /// computes these in the vector domain; the generic one folds its own
  /// arrays, so the driver never re-walks the lanes in the hot case.
  U128 sum_lo[2];
  U128 sum_hi[2];
  int pmax = 0;               ///< max over lanes of the lsb position p
  bool all_fast = false;      ///< every lane normal, in-window, untruncated
  bool uniform = false;       ///< all lanes share lq[0] (one target limb pair)
};

/// The fast-lane window for an (n,k) format, in biased-exponent terms. A
/// lane is FAST iff be_lo <= biased_exp <= be_hi, which is exactly:
///   - normal and finite (be >= 1, be <= 0x7FE),
///   - whole mantissa at or above 2^(-64k): p = be-1075+64k >= 0, so the
///     deposit is exact (no kInexact truncation), and
///   - msb = p+52 <= 64n-2, below the sign bit (no kConvertOverflow).
/// A fast deposit raises no status flags, touches exactly limbs li/li-1,
/// and has msb = p+52 with the implicit leading bit — the three facts the
/// batched path needs. Everything else (zeros, subnormals, non-finite,
/// out-of-range, sub-lsb truncation) punts to the scalar kernel.
struct Window {
  int be_lo;
  int be_hi;
  int pbias;  ///< 64k - 1075: biased exponent -> signed lsb position p
};

[[nodiscard]] constexpr Window window(int n, int k) noexcept {
  Window w{};
  w.be_lo = 1075 - 64 * k;
  if (w.be_lo < 1) w.be_lo = 1;
  w.be_hi = 64 * (n - k) + 1021;
  if (w.be_hi > 0x7FE) w.be_hi = 0x7FE;
  w.pbias = 64 * k - 1075;
  return w;
}

/// The batched accumulate driver. Bit-identity with the scalar per-element
/// kernel::block_add loop (limbs AND sticky status) holds because:
///
///   1. Only all-fast batches are vector-deposited, and a fast deposit
///      raises no flags, so batching cannot reorder or drop status.
///   2. The batch bound nb = max(bound, pmax+53) + kWidth dominates the
///      scalar recurrence b' = max(b, msb+1)+1 applied to the same kWidth
///      elements (induction: after i elements the scalar bound is at most
///      max(b0, pmax+53) + i), so if nb fits under 64n-1 every scalar
///      intermediate bound fits too — the scalar path would not have
///      flushed inside this batch, and its deposits commute in the planes:
///      the fold below hands each plane slot exactly the words the scalar
///      loop would, just pre-summed in a register, so the plane contents
///      (not merely their totals) are identical.
///   3. A batch that fails the gate is punted WHOLE, element-wise, in
///      stream order through kernel::block_add, whose flush + scatter
///      fallback is bit-identical by construction. The conservative bound
///      can only make that fallback fire EARLIER than the scalar path —
///      on the same exact partial sum, hence the same limbs and flags.
///   4. The bound grows by kWidth per kWidth deferred deposits (>= 1 per
///      deposit, same as scalar), preserving the pending <= 64n-1 flush
///      exactness invariant documented at kernel::block_flush.
template <class DecomposeFn>
[[nodiscard]] inline HpStatus accumulate_batches(
    util::Limb* a, U128* pos, U128* neg, int n, int k, int& bound_exp,
    int& pending, std::span<const double> xs,
    DecomposeFn&& decompose) noexcept {
  HpStatus st = HpStatus::kOk;
  int bound = bound_exp;
  int pend = pending;
  const Window w = window(n, k);
  const double* x = xs.data();
  const std::size_t size = xs.size();
  std::uint64_t batches = 0;
  std::uint64_t punts = 0;
  std::size_t i = 0;
  for (const std::size_t nfull = size - size % kWidth; i < nfull;
       i += kWidth) {
    LaneBatch b;
    decompose(x + i, w, b);
    if (b.all_fast) [[likely]] {
      const int nb = (bound > b.pmax + 53 ? bound : b.pmax + 53) + kWidth;
      if (nb <= 64 * n - 1) [[likely]] {
        ++batches;
        if (b.uniform) [[likely]] {
          // One target limb pair: the decomposer already folded the batch
          // into four plane deltas, so the planes are touched only four
          // times, instead of paying kWidth dependent read-modify-writes
          // on the same slots.
          const int li = n - 1 - static_cast<int>(b.lq[0]);
          pos[li + 1] += b.sum_lo[0];
          pos[li] += b.sum_hi[0];
          neg[li + 1] += b.sum_lo[1];
          neg[li] += b.sum_hi[1];
        } else {
          // Lanes straddle a limb boundary: deposit per lane. The
          // sign-split arrays make this branch-free — one side of each
          // pair is zero, and adding zero to a plane slot is a no-op on
          // the plane's total.
          for (int j = 0; j < kWidth; ++j) {
            const int li = n - 1 - static_cast<int>(b.lq[j]);
            pos[li + 1] += b.lop[j];
            pos[li] += b.hip[j];
            neg[li + 1] += b.lon[j];
            neg[li] += b.hin[j];
          }
        }
        bound = nb;
        pend += kWidth;
        continue;
      }
    }
    // Slow lane or bound pressure: the whole batch takes the scalar kernel,
    // in stream order, so flush points and status flags keep the scalar
    // path's exact semantics.
    ++punts;
    for (int j = 0; j < kWidth; ++j) {
      st |= kernel::block_add(a, pos, neg, n, k, bound, pend, x[i + j]);
    }
  }
  for (; i < size; ++i) {
    st |= kernel::block_add(a, pos, neg, n, k, bound, pend, x[i]);
  }
  // Telemetry once per span, not per batch: the batch loop must not pay a
  // TLS shard RMW every kWidth summands. (Punted elements were counted by
  // block_add itself; these are the vector-path totals.)
  if (batches != 0) {
    trace::count(trace::Counter::kBlockSimdBatches, batches);
    trace::count(trace::Counter::kBlockSimdDeposits,
                 batches * static_cast<std::uint64_t>(kWidth));
    trace::count(trace::Counter::kBlockDeposits,
                 batches * static_cast<std::uint64_t>(kWidth));
  }
  if (punts != 0) {
    trace::count(trace::Counter::kBlockSimdPunts, punts);
  }
  bound_exp = bound;
  pending = pend;
  return st;
}

}  // namespace hpsum::kernel::simd::detail
