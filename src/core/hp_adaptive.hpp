// HpAdaptive — runtime-adaptive precision (the paper's §V future work).
//
// The one flaw the paper concedes in the HP method is that the user must
// know the dynamic range of the summands a priori and size N and k to fit.
// HpAdaptive removes that requirement: it starts from a small format and
// widens itself whenever
//   - a summand's magnitude exceeds the current range   -> grow integer side,
//   - a summand has bits below the current lsb          -> grow fraction side,
//   - the running total overflows during an add          -> grow by one limb
//     and algebraically repair the wrapped sum (two's-complement wrap is by
//     exactly 2^(64n), so the true value is recoverable).
//
// Sums remain exact and order-invariant *as values*; note that unlike
// HpFixed, the limb image depends on the growth history, so invariance is of
// the numeric value (compare via to_double()/decimal), not the byte image.
#pragma once

#include <cstdint>
#include <string>

#include "core/hp_dyn.hpp"

namespace hpsum {

/// Self-widening exact accumulator.
class HpAdaptive {
 public:
  /// Starts with `initial` format; never grows past `max_limbs` total limbs
  /// (throws std::overflow_error if forced to).
  explicit HpAdaptive(HpConfig initial = HpConfig{2, 1},
                      int max_limbs = kMaxLimbs);

  /// Adds a double exactly, widening the format as needed.
  /// Throws std::invalid_argument for NaN/Inf, std::overflow_error at the
  /// growth cap.
  HpAdaptive& operator+=(double r);

  /// Subtracts a double exactly.
  HpAdaptive& operator-=(double r) { return *this += -r; }

  /// Adds another adaptive value exactly (formats are unified first).
  HpAdaptive& operator+=(const HpAdaptive& other);

  /// Rounds to the nearest double.
  [[nodiscard]] double to_double() const noexcept { return v_.to_double(); }

  /// Exact decimal rendering.
  [[nodiscard]] std::string to_decimal_string(std::size_t max_frac_digits = 0) const {
    return v_.to_decimal_string(max_frac_digits);
  }

  /// Divides by a small positive integer exactly at lsb resolution (see
  /// HpDyn::div_small); returns the remainder in lsb units. Raises the same
  /// sticky kInexact / kInvalidOp flags as the fixed-format accumulators.
  std::uint64_t div_small(std::uint64_t d) noexcept { return v_.div_small(d); }

  /// Sticky status accumulated since the last clear. Flags other than the
  /// kAddOverflow consumed by the wrap-repair recovery (which is handled,
  /// not dropped) stay sticky across adds, exactly as on HpFixed/HpDyn.
  [[nodiscard]] HpStatus status() const noexcept { return v_.status(); }

  /// Clears the sticky status.
  void clear_status() noexcept { v_.clear_status(); }

  /// Current format (grows over time).
  [[nodiscard]] HpConfig config() const noexcept { return v_.config(); }

  /// The underlying value.
  [[nodiscard]] const HpDyn& value() const noexcept { return v_; }

  /// Number of widenings performed so far (observability for tests and the
  /// ablate_adaptive bench).
  [[nodiscard]] int growth_events() const noexcept { return growth_events_; }

 private:
  /// Ensures the format can hold a value with msb exponent `e_hi` and lsb
  /// exponent `e_lo` (both inclusive), growing as needed.
  void ensure_exponents(int e_hi, int e_lo);
  void grow_int(int extra_limbs);
  void grow_frac(int extra_limbs);
  /// Repairs a just-wrapped addition: widen by one integer limb whose fill
  /// is the true sign (`positive`), which algebraically re-adds the lost
  /// +/-2^(64n).
  void recover_add_overflow(bool positive);
  void check_cap(int new_n) const;

  HpDyn v_;
  int max_limbs_;
  int growth_events_ = 0;
};

}  // namespace hpsum
