#include "core/reduce.hpp"

#include "trace/flight.hpp"

namespace hpsum {

HpDyn reduce_hp(std::span<const double> xs, HpConfig cfg) {
  const trace::HistTimer latency(trace::Hist::kReduceLatencyNs);
  const trace::flight::Span local_span(trace::flight::EventId::kLocalReduce,
                                       trace::flight::current_reduction_id(),
                                       xs.size());
  HpDyn acc(cfg);
  acc.accumulate(xs);
  return acc;
}

double reduce_double(std::span<const double> xs) noexcept {
  double naive = 0.0;
  // hplint: allow(fp-accumulate) — the paper's order-sensitive baseline
  for (const double x : xs) naive += x;
  return naive;
}

}  // namespace hpsum
