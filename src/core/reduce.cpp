#include "core/reduce.hpp"

namespace hpsum {

HpDyn reduce_hp(std::span<const double> xs, HpConfig cfg) {
  HpDyn acc(cfg);
  for (const double x : xs) acc += x;
  return acc;
}

double reduce_double(std::span<const double> xs) noexcept {
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc;
}

}  // namespace hpsum
