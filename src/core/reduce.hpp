// Sequential reduction kernels over arrays of doubles.
//
// These are the inner loops every backend (OpenMP, mpisim, cudasim, phisim)
// and every bench builds on. Both reduce_hp overloads route through the
// carry-deferred block fast path (core/hp_kernel.hpp BlockAccumulator):
// deposits land in per-limb carry-save planes and carries normalize once
// per block instead of once per summand — bit-identical, limbs and sticky
// status, to the element-at-a-time operator+=(double) loop.
// bench/ablate_block.cpp --json quantifies the speedup; HpFixed's
// add_double_reference keeps the original convert+add pair callable.
#pragma once

#include <span>

#include "core/hp_dyn.hpp"
#include "core/hp_fixed.hpp"

namespace hpsum {

/// HP sum of a slice with a compile-time format. Exact and order-invariant.
/// Routed through the carry-deferred block fast path (BlockAccumulator):
/// bit-identical to the element-at-a-time scalar loop, limbs and status.
template <int N, int K>
[[nodiscard]] HpFixed<N, K> reduce_hp(std::span<const double> xs) noexcept {
  BlockAccumulator<N, K> blk;
  blk.accumulate(xs);
  return HpFixed<N, K>(blk);
}

/// HP sum of a slice with a runtime format.
[[nodiscard]] HpDyn reduce_hp(std::span<const double> xs, HpConfig cfg);

/// Plain left-to-right double sum (the paper's "double precision" baseline;
/// order-dependent).
[[nodiscard]] double reduce_double(std::span<const double> xs) noexcept;

}  // namespace hpsum
