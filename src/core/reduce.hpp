// Sequential reduction kernels over arrays of doubles.
//
// These are the inner loops every backend (OpenMP, mpisim, cudasim, phisim)
// and every bench builds on: each double is deposited into the running
// partial sum via operator+=(double), which since the scatter-add fast path
// (detail::scatter_add_double) places the mantissa directly into the 2-3
// affected limbs instead of materializing a full-width converted temporary.
// bench/ablate_convert.cpp --json quantifies the difference; HpFixed's
// add_double_reference keeps the old convert+add pair callable.
#pragma once

#include <span>

#include "core/hp_dyn.hpp"
#include "core/hp_fixed.hpp"

namespace hpsum {

/// HP sum of a slice with a compile-time format. Exact and order-invariant.
template <int N, int K>
[[nodiscard]] HpFixed<N, K> reduce_hp(std::span<const double> xs) noexcept {
  HpFixed<N, K> acc;
  for (const double x : xs) acc += x;
  return acc;
}

/// HP sum of a slice with a runtime format.
[[nodiscard]] HpDyn reduce_hp(std::span<const double> xs, HpConfig cfg);

/// Plain left-to-right double sum (the paper's "double precision" baseline;
/// order-dependent).
[[nodiscard]] double reduce_double(std::span<const double> xs) noexcept;

}  // namespace hpsum
