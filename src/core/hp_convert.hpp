// HP conversion kernels: double -> HP (paper Listing 1, generalized to any
// N,k and fixed for the inexact/underflow corner), exact bit-placement
// conversion, and HP -> double with correct round-to-nearest-even.
//
// The limb-arithmetic kernels (carry-propagating add, scatter-add deposit,
// negate/sub/compare, the block fast path) live in core/hp_kernel.hpp — the
// single-kernel home hplint rule L6 enforces. This header pulls it in, so
// existing includes of hp_convert.hpp keep seeing the whole core surface.
//
// The `detail` functions are header-inline and take (limbs, n, k) so that
// HpFixed<N,K> instantiates them with compile-time constants (the compiler
// unrolls the N-step loops) while HpDyn calls the same code through the
// runtime wrappers below. One implementation, two entry points.
//
// The double-path kernels are constexpr and libm-free: IEEE-754 fields are
// read and written with std::bit_cast instead of frexp/ldexp/isfinite, so
// the whole convert -> add -> convert pipeline can be evaluated at compile
// time. tests/test_constexpr_proofs.cpp turns that into static_assert
// proofs that the hot path is pure integer/bit arithmetic with no hidden
// dependence on the FP environment.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "core/hp_config.hpp"
#include "core/hp_kernel.hpp"
#include "core/hp_status.hpp"
#include "trace/trace.hpp"
#include "util/annotations.hpp"
#include "util/limbs.hpp"

namespace hpsum {

namespace detail {

/// Extracts the 64 bits [lowbit+63 .. lowbit] of a big-endian magnitude,
/// zero-filling positions outside [0, 64n). Bit 0 is the lsb of limbs[n-1].
constexpr std::uint64_t extract_u64(const util::Limb* limbs, int n,
                                    int lowbit) noexcept {
  std::uint64_t out = 0;
  for (int b = 0; b < 64; ++b) {
    const int p = lowbit + b;
    if (p < 0 || p >= 64 * n) continue;
    const int li = n - 1 - p / 64;
    const int off = p % 64;
    out |= ((limbs[li] >> off) & 1ull) << b;
  }
  return out;
}

/// True iff any bit strictly below `bit` is set.
constexpr bool any_bits_below(const util::Limb* limbs, int n,
                              int bit) noexcept {
  if (bit <= 0) return false;
  const int full = bit / 64;  // count of fully-below limbs (from the bottom)
  for (int i = 0; i < full; ++i) {
    if (limbs[n - 1 - i] != 0) return true;
  }
  const int rem = bit % 64;
  if (rem != 0) {
    const util::Limb mask = (util::Limb{1} << rem) - 1;
    if ((limbs[n - 1 - full] & mask) != 0) return true;
  }
  return false;
}

/// double -> HP, the paper's Listing 1 generalized:
///  - scales |r| so the integer part of the running remainder is the next
///    limb, peeling one limb per iteration (N FP multiplies + N FP adds);
///  - applies two's complement for negative values in the same pass with a
///    look-ahead carry (+1 lands at the lowest limb and propagates through
///    limbs whose *stored* lower part is zero);
///  - truncates toward zero any bits below 2^(-64k) and reports kInexact.
///
/// The look-ahead uses "remainder < weight of the lowest stored bit at this
/// step" rather than the paper's "remainder <= 0": the two agree whenever
/// the double converts exactly (the intended regime), and the former is also
/// correct when low bits are being truncated. DESIGN.md §7 discusses this.
///
/// Requires 64*(n-k-1) <= 960 (always true for n <= 16); larger formats must
/// use from_double_exact.
HPSUM_ALLOW_UNSIGNED_WRAP
constexpr HpStatus from_double_impl(double r, util::Limb* a, int n,
                                    int k) noexcept {
  if (!f64_is_finite(r)) {
    for (int i = 0; i < n; ++i) a[i] = 0;
    return HpStatus::kConvertOverflow;
  }
  HpStatus st = HpStatus::kOk;
  double dtmp = f64_abs(r) * pow2(-64 * (n - k - 1));
  if (dtmp >= pow2(63)) {
    for (int i = 0; i < n; ++i) a[i] = 0;
    return HpStatus::kConvertOverflow;
  }
  if (dtmp < pow2(-1022)) {
    // The scaling multiply underflowed into the subnormal range (or to
    // zero), losing mantissa bits before the residue check could see them.
    // For n <= 16, 2^-1022 < the format lsb's weight in scaled space
    // (2^(-64(n-1))), so the entire value sits below the lsb: the exact
    // result is zero, inexact unless r was zero.
    for (int i = 0; i < n; ++i) a[i] = 0;
    return (r != 0.0) ? HpStatus::kInexact : HpStatus::kOk;
  }
  const bool isneg = r < 0.0;
  for (int i = 0; i < n - 1; ++i) {
    const util::Limb itmp = static_cast<util::Limb>(dtmp);
    dtmp = (dtmp - static_cast<double>(itmp)) * pow2(64);
    // Lowest stored bit visible in the remaining limbs has weight
    // 2^(-64*(n-2-i)) at this step's scale; a remainder below it means all
    // stored lower limbs are zero and the two's-complement +1 reaches us.
    const bool low_zero = dtmp < pow2(-64 * (n - 2 - i));
    a[i] = isneg ? ~itmp + static_cast<util::Limb>(low_zero) : itmp;
  }
  const util::Limb last = static_cast<util::Limb>(dtmp);
  if (dtmp - static_cast<double>(last) > 0.0) st |= HpStatus::kInexact;
  a[n - 1] = isneg ? ~last + 1 : last;
  return st;
}

/// double -> HP by direct bit placement. Exact for every finite double and
/// valid for any n <= kMaxLimbs; used as the reference implementation in
/// tests and as the path for very wide formats. Reads the IEEE fields
/// directly: a normal double is (2^52 | frac) * 2^(E-1075), a subnormal is
/// frac * 2^-1074; either way the mantissa lands at storage-bit position
/// p = weight-of-lsb + 64k.
constexpr HpStatus from_double_exact(double r, util::Limb* a, int n,
                                     int k) noexcept {
  for (int i = 0; i < n; ++i) a[i] = 0;
  if (r == 0.0) return HpStatus::kOk;
  if (!f64_is_finite(r)) return HpStatus::kConvertOverflow;

  const int be = f64_biased_exp(r);
  std::uint64_t m53 = f64_bits(r) & ((std::uint64_t{1} << 52) - 1);
  if (be != 0) m53 |= std::uint64_t{1} << 52;  // implicit leading bit
  // Weight of m53's lsb: 2^(be-1075) for normals, 2^-1074 for subnormals;
  // in storage-bit coordinates that is position:
  int p = (be == 0 ? -1074 : be - 1075) + 64 * k;
  HpStatus st = HpStatus::kOk;

  if (p < 0) {
    // Low bits fall below 2^(-64k): truncate toward zero.
    if (-p >= 53) {
      return HpStatus::kInexact;  // r != 0 here, entirely below the lsb
    }
    if ((m53 & ((std::uint64_t{1} << -p) - 1)) != 0) st |= HpStatus::kInexact;
    m53 >>= -p;
    p = 0;
    if (m53 == 0) return st;
  }
  const int msb = p + 63 - std::countl_zero(m53);
  if (msb >= 64 * n - 1) {
    return HpStatus::kConvertOverflow;  // collides with or passes the sign bit
  }
  // Scatter m53 into the big-endian limb array at bit offset p.
  const int li = n - 1 - p / 64;
  const int off = p % 64;
  a[li] |= m53 << off;
  if (off != 0 && li >= 1) a[li - 1] |= m53 >> (64 - off);

  if ((f64_bits(r) >> 63) != 0) {
    util::negate_twos(util::LimbSpan(a, static_cast<std::size_t>(n)));
  }
  return st;
}

/// HP -> double with a single correct round-to-nearest-even at the end —
/// the "round once, after the reduction" promise of high-precision
/// intermediate sum methods. The result double is assembled field-by-field
/// (bit_cast, not ldexp): mant is 53 bits with the msb set, so a normal
/// result is encoded directly; a subnormal result re-rounds mant to the
/// subnormal grid (ties to even), exactly as ldexp would.
constexpr HpStatus to_double_impl(const util::Limb* a, int n, int k,
                                  double* out) noexcept {
  util::Limb mag[kMaxLimbs] = {};
  for (int i = 0; i < n; ++i) mag[i] = a[i];
  const auto span = util::LimbSpan(mag, static_cast<std::size_t>(n));
  const bool neg = util::sign_bit(span);
  if (neg) util::negate_twos(span);

  const int h = util::highest_set_bit(span);
  if (h < 0) {
    *out = 0.0;
    return HpStatus::kOk;
  }
  const std::uint64_t top = extract_u64(mag, n, h - 63);
  const bool sticky = any_bits_below(mag, n, h - 63);
  std::uint64_t mant = top >> 11;          // 53 bits, msb set
  const std::uint64_t round = top & 0x7FF;  // guard + round bits
  const bool roundup =
      round > 0x400 || (round == 0x400 && (sticky || (mant & 1) != 0));
  mant += static_cast<std::uint64_t>(roundup);

  int e = (h - 64 * k) - 52;  // exponent of mant's lsb
  if (mant == (std::uint64_t{1} << 53)) {  // roundup carried out of 53 bits
    mant >>= 1;
    ++e;
  }
  const int be = e + 1075;  // biased exponent if encoded as a normal
  HpStatus st = HpStatus::kOk;
  std::uint64_t dbits = 0;
  if (be >= 0x7FF) {
    dbits = std::uint64_t{0x7FF} << 52;  // +inf
    st |= HpStatus::kToDoubleOverflow;
  } else if (be >= 1) {
    dbits = (static_cast<std::uint64_t>(be) << 52) |
            (mant & ((std::uint64_t{1} << 52) - 1));
  } else {
    // Subnormal range: round mant to the 2^-1074 grid, ties to even (the
    // same double rounding ldexp performed here before this was constexpr).
    const int sh = 1 - be;
    std::uint64_t q = 0;
    if (sh <= 54) {  // mant < 2^53, so sh > 54 rounds to zero
      q = mant >> sh;
      const std::uint64_t rem = mant & ((std::uint64_t{1} << sh) - 1);
      const std::uint64_t half = std::uint64_t{1} << (sh - 1);
      if (rem > half || (rem == half && (q & 1) != 0)) ++q;
    }
    dbits = q;  // subnormal encoding; q == 2^52 rolls into the first normal
    // Conservatively flag any subnormal/zero result (may flag a subnormal
    // that happened to convert exactly, never misses a lossy one).
    if (q < (std::uint64_t{1} << 52)) st |= HpStatus::kToDoubleInexact;
  }
  if (neg) dbits |= std::uint64_t{1} << 63;
  *out = std::bit_cast<double>(dbits);
  trace::count_status(st);
  return st;
}

}  // namespace detail

namespace detail {

/// long double -> HP by exact bit placement. On x86 the 80-bit extended
/// format carries a 64-bit mantissa, so sums computed in x87 registers can
/// enter an HP accumulator without rounding to double first. Exact for any
/// finite long double whose bits fit the format (others flag as usual).
/// (Not constexpr: long double has no bit_cast-able object representation,
/// so this path still goes through frexp/ldexp.)
inline HpStatus from_long_double_exact(long double r, util::Limb* a, int n,
                                       int k) noexcept {
  for (int i = 0; i < n; ++i) a[i] = 0;
  if (r == 0.0L) return HpStatus::kOk;
  if (!std::isfinite(r)) return HpStatus::kConvertOverflow;
  int exp = 0;
  const long double ld_mant = std::frexp(r < 0 ? -r : r, &exp);
  // |r| = ld_mant * 2^exp with ld_mant in [0.5, 1): extract 64 mantissa bits.
  auto m64 = static_cast<std::uint64_t>(std::ldexp(ld_mant, 64));
  int p = (exp - 64) + 64 * k;  // storage-bit position of m64's lsb
  HpStatus st = HpStatus::kOk;

  if (p < 0) {
    if (-p >= 64) return HpStatus::kInexact;
    if ((m64 & ((std::uint64_t{1} << -p) - 1)) != 0) st |= HpStatus::kInexact;
    m64 >>= -p;
    p = 0;
    if (m64 == 0) return st;
  }
  const int msb = p + 63 - std::countl_zero(m64);
  if (msb >= 64 * n - 1) return HpStatus::kConvertOverflow;
  const int li = n - 1 - p / 64;
  const int off = p % 64;
  a[li] |= m64 << off;
  if (off != 0 && li >= 1) a[li - 1] |= m64 >> (64 - off);
  if (r < 0.0L) {
    util::negate_twos(util::LimbSpan(a, static_cast<std::size_t>(n)));
  }
  return st;
}

}  // namespace detail

/// Runtime-config wrappers over the kernels above (implemented in
/// hp_convert.cpp; the limb-arithmetic wrappers hp_add / hp_scatter_add
/// live in hp_kernel.hpp/.cpp). `limbs` must have exactly cfg.n elements.
HpStatus hp_from_double(double r, util::LimbSpan limbs, const HpConfig& cfg) noexcept;
HpStatus hp_from_double_exact(double r, util::LimbSpan limbs, const HpConfig& cfg) noexcept;
HpStatus hp_from_long_double(long double r, util::LimbSpan limbs, const HpConfig& cfg) noexcept;
HpStatus hp_to_double(util::ConstLimbSpan limbs, const HpConfig& cfg, double* out) noexcept;

}  // namespace hpsum
