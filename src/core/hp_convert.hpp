// Core HP kernels: double -> HP conversion (paper Listing 1, generalized to
// any N,k and fixed for the inexact/underflow corner), HP + HP addition with
// carry propagation (Listing 2), and HP -> double conversion with correct
// round-to-nearest-even.
//
// The `detail` functions are header-inline and take (limbs, n, k) so that
// HpFixed<N,K> instantiates them with compile-time constants (the compiler
// unrolls the N-step loops) while HpDyn calls the same code through the
// runtime wrappers below. One implementation, two entry points.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "core/hp_config.hpp"
#include "core/hp_status.hpp"
#include "util/limbs.hpp"

namespace hpsum {

namespace detail {

/// 2^e as a double for -1022 <= e <= 1023, computable at compile time.
constexpr double pow2(int e) noexcept {
  return std::bit_cast<double>(static_cast<std::uint64_t>(1023 + e) << 52);
}

/// Extracts the 64 bits [lowbit+63 .. lowbit] of a big-endian magnitude,
/// zero-filling positions outside [0, 64n). Bit 0 is the lsb of limbs[n-1].
inline std::uint64_t extract_u64(const util::Limb* limbs, int n,
                                 int lowbit) noexcept {
  std::uint64_t out = 0;
  for (int b = 0; b < 64; ++b) {
    const int p = lowbit + b;
    if (p < 0 || p >= 64 * n) continue;
    const int li = n - 1 - p / 64;
    const int off = p % 64;
    out |= ((limbs[li] >> off) & 1ull) << b;
  }
  return out;
}

/// True iff any bit strictly below `bit` is set.
inline bool any_bits_below(const util::Limb* limbs, int n, int bit) noexcept {
  if (bit <= 0) return false;
  const int full = bit / 64;  // count of fully-below limbs (from the bottom)
  for (int i = 0; i < full; ++i) {
    if (limbs[n - 1 - i] != 0) return true;
  }
  const int rem = bit % 64;
  if (rem != 0) {
    const util::Limb mask = (util::Limb{1} << rem) - 1;
    if ((limbs[n - 1 - full] & mask) != 0) return true;
  }
  return false;
}

/// double -> HP, the paper's Listing 1 generalized:
///  - scales |r| so the integer part of the running remainder is the next
///    limb, peeling one limb per iteration (N FP multiplies + N FP adds);
///  - applies two's complement for negative values in the same pass with a
///    look-ahead carry (+1 lands at the lowest limb and propagates through
///    limbs whose *stored* lower part is zero);
///  - truncates toward zero any bits below 2^(-64k) and reports kInexact.
///
/// The look-ahead uses "remainder < weight of the lowest stored bit at this
/// step" rather than the paper's "remainder <= 0": the two agree whenever
/// the double converts exactly (the intended regime), and the former is also
/// correct when low bits are being truncated. DESIGN.md §7 discusses this.
///
/// Requires 64*(n-k-1) <= 960 (always true for n <= 16); larger formats must
/// use from_double_exact.
inline HpStatus from_double_impl(double r, util::Limb* a, int n,
                                 int k) noexcept {
  if (!std::isfinite(r)) {
    for (int i = 0; i < n; ++i) a[i] = 0;
    return HpStatus::kConvertOverflow;
  }
  HpStatus st = HpStatus::kOk;
  double dtmp = std::fabs(r) * pow2(-64 * (n - k - 1));
  if (dtmp >= pow2(63)) {
    for (int i = 0; i < n; ++i) a[i] = 0;
    return HpStatus::kConvertOverflow;
  }
  if (dtmp < pow2(-1022)) {
    // The scaling multiply underflowed into the subnormal range (or to
    // zero), losing mantissa bits before the residue check could see them.
    // For n <= 16, 2^-1022 < the format lsb's weight in scaled space
    // (2^(-64(n-1))), so the entire value sits below the lsb: the exact
    // result is zero, inexact unless r was zero.
    for (int i = 0; i < n; ++i) a[i] = 0;
    return (r != 0.0) ? HpStatus::kInexact : HpStatus::kOk;
  }
  const bool isneg = r < 0.0;
  for (int i = 0; i < n - 1; ++i) {
    const util::Limb itmp = static_cast<util::Limb>(dtmp);
    dtmp = (dtmp - static_cast<double>(itmp)) * pow2(64);
    // Lowest stored bit visible in the remaining limbs has weight
    // 2^(-64*(n-2-i)) at this step's scale; a remainder below it means all
    // stored lower limbs are zero and the two's-complement +1 reaches us.
    const bool low_zero = dtmp < pow2(-64 * (n - 2 - i));
    a[i] = isneg ? ~itmp + static_cast<util::Limb>(low_zero) : itmp;
  }
  const util::Limb last = static_cast<util::Limb>(dtmp);
  if (dtmp - static_cast<double>(last) > 0.0) st |= HpStatus::kInexact;
  a[n - 1] = isneg ? ~last + 1 : last;
  return st;
}

/// double -> HP by direct bit placement (frexp + shifts). Exact for every
/// finite double and valid for any n <= kMaxLimbs; used as the reference
/// implementation in tests and as the path for very wide formats.
inline HpStatus from_double_exact(double r, util::Limb* a, int n,
                                  int k) noexcept {
  for (int i = 0; i < n; ++i) a[i] = 0;
  if (r == 0.0) return HpStatus::kOk;
  if (!std::isfinite(r)) return HpStatus::kConvertOverflow;

  int exp = 0;
  const double mant = std::frexp(std::fabs(r), &exp);  // |r| = mant * 2^exp
  std::uint64_t m53 = static_cast<std::uint64_t>(std::ldexp(mant, 53));
  // Bit 52 of m53 is the msb; its weight is 2^(exp-1). The lsb of m53 has
  // weight 2^(exp-53); in storage-bit coordinates that is position:
  int p = (exp - 53) + 64 * k;
  HpStatus st = HpStatus::kOk;

  if (p < 0) {
    // Low bits fall below 2^(-64k): truncate toward zero.
    if (-p >= 53) {
      return (r != 0.0) ? HpStatus::kInexact : HpStatus::kOk;
    }
    if ((m53 & ((std::uint64_t{1} << -p) - 1)) != 0) st |= HpStatus::kInexact;
    m53 >>= -p;
    p = 0;
    if (m53 == 0) return st;
  }
  const int msb = p + 63 - std::countl_zero(m53);
  if (msb >= 64 * n - 1) {
    return HpStatus::kConvertOverflow;  // collides with or passes the sign bit
  }
  // Scatter m53 into the big-endian limb array at bit offset p.
  const int li = n - 1 - p / 64;
  const int off = p % 64;
  a[li] |= m53 << off;
  if (off != 0 && li >= 1) a[li - 1] |= m53 >> (64 - off);

  if (r < 0.0) util::negate_twos(util::LimbSpan(a, static_cast<std::size_t>(n)));
  return st;
}

/// HP += HP (paper Listing 2): limb-wise addition from the least significant
/// limb upward, with explicit carry propagation. Detects overflow by the
/// sign rule the paper gives (§III.A): same-sign operands whose sum has the
/// opposite sign.
inline HpStatus add_impl(util::Limb* a, const util::Limb* b, int n) noexcept {
  const bool sa = (a[0] >> 63) != 0;
  const bool sb = (b[0] >> 63) != 0;
  if (n == 1) {
    a[0] += b[0];
  } else {
    a[n - 1] = a[n - 1] + b[n - 1];
    bool co = a[n - 1] < b[n - 1];
    for (int i = n - 2; i >= 1; --i) {
      a[i] = a[i] + b[i] + static_cast<util::Limb>(co);
      co = (a[i] == b[i]) ? co : (a[i] < b[i]);
    }
    a[0] = a[0] + b[0] + static_cast<util::Limb>(co);
  }
  const bool sr = (a[0] >> 63) != 0;
  return (sa == sb && sr != sa) ? HpStatus::kAddOverflow : HpStatus::kOk;
}

/// HP -> double with a single correct round-to-nearest-even at the end —
/// the "round once, after the reduction" promise of high-precision
/// intermediate sum methods.
inline HpStatus to_double_impl(const util::Limb* a, int n, int k,
                               double* out) noexcept {
  util::Limb mag[kMaxLimbs];
  for (int i = 0; i < n; ++i) mag[i] = a[i];
  const auto span = util::LimbSpan(mag, static_cast<std::size_t>(n));
  const bool neg = util::sign_bit(span);
  if (neg) util::negate_twos(span);

  const int h = util::highest_set_bit(span);
  if (h < 0) {
    *out = 0.0;
    return HpStatus::kOk;
  }
  const std::uint64_t top = extract_u64(mag, n, h - 63);
  const bool sticky = any_bits_below(mag, n, h - 63);
  std::uint64_t mant = top >> 11;          // 53 bits, msb set
  const std::uint64_t round = top & 0x7FF;  // guard + round bits
  const bool roundup =
      round > 0x400 || (round == 0x400 && (sticky || (mant & 1) != 0));
  mant += static_cast<std::uint64_t>(roundup);

  const int e = (h - 64 * k) - 52;  // exponent of mant's lsb
  const double d = std::ldexp(static_cast<double>(mant), e);
  HpStatus st = HpStatus::kOk;
  if (std::isinf(d)) st |= HpStatus::kToDoubleOverflow;
  // Below the normal-double floor ldexp itself rounds the 53-bit mantissa;
  // conservatively flag any subnormal/zero result (may flag a subnormal
  // that happened to convert exactly, never misses a lossy one).
  if (d == 0.0 || std::fabs(d) < pow2(-1022)) st |= HpStatus::kToDoubleInexact;
  *out = neg ? -d : d;
  return st;
}

}  // namespace detail

namespace detail {

/// long double -> HP by exact bit placement. On x86 the 80-bit extended
/// format carries a 64-bit mantissa, so sums computed in x87 registers can
/// enter an HP accumulator without rounding to double first. Exact for any
/// finite long double whose bits fit the format (others flag as usual).
inline HpStatus from_long_double_exact(long double r, util::Limb* a, int n,
                                       int k) noexcept {
  for (int i = 0; i < n; ++i) a[i] = 0;
  if (r == 0.0L) return HpStatus::kOk;
  if (!std::isfinite(r)) return HpStatus::kConvertOverflow;
  int exp = 0;
  const long double mant = std::frexp(r < 0 ? -r : r, &exp);
  // |r| = mant * 2^exp with mant in [0.5, 1): extract 64 mantissa bits.
  auto m64 = static_cast<std::uint64_t>(std::ldexp(mant, 64));
  int p = (exp - 64) + 64 * k;  // storage-bit position of m64's lsb
  HpStatus st = HpStatus::kOk;

  if (p < 0) {
    if (-p >= 64) return HpStatus::kInexact;
    if ((m64 & ((std::uint64_t{1} << -p) - 1)) != 0) st |= HpStatus::kInexact;
    m64 >>= -p;
    p = 0;
    if (m64 == 0) return st;
  }
  const int msb = p + 63 - std::countl_zero(m64);
  if (msb >= 64 * n - 1) return HpStatus::kConvertOverflow;
  const int li = n - 1 - p / 64;
  const int off = p % 64;
  a[li] |= m64 << off;
  if (off != 0 && li >= 1) a[li - 1] |= m64 >> (64 - off);
  if (r < 0.0L) {
    util::negate_twos(util::LimbSpan(a, static_cast<std::size_t>(n)));
  }
  return st;
}

}  // namespace detail

/// Runtime-config wrappers over the kernels above (implemented in
/// hp_convert.cpp). `limbs` must have exactly cfg.n elements.
HpStatus hp_from_double(double r, util::LimbSpan limbs, const HpConfig& cfg) noexcept;
HpStatus hp_from_double_exact(double r, util::LimbSpan limbs, const HpConfig& cfg) noexcept;
HpStatus hp_from_long_double(long double r, util::LimbSpan limbs, const HpConfig& cfg) noexcept;
HpStatus hp_add(util::LimbSpan a, util::ConstLimbSpan b) noexcept;
HpStatus hp_to_double(util::ConstLimbSpan limbs, const HpConfig& cfg, double* out) noexcept;

}  // namespace hpsum
