#include "core/hp_adaptive.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "core/hp_convert.hpp"
#include "trace/flight.hpp"

namespace hpsum {

namespace {

/// Msb exponent: e with 2^e <= |r| < 2^(e+1).
int msb_exponent(double r) noexcept { return std::ilogb(r); }

/// Lsb exponent: the weight of the lowest set mantissa bit.
int lsb_exponent(double r) noexcept {
  int exp = 0;
  const double mant = std::frexp(std::fabs(r), &exp);  // |r| = mant * 2^exp
  const auto m53 = static_cast<std::uint64_t>(std::ldexp(mant, 53));
  return exp - 53 + std::countr_zero(m53);
}

}  // namespace

HpAdaptive::HpAdaptive(HpConfig initial, int max_limbs)
    : v_(initial), max_limbs_(max_limbs) {
  if (max_limbs_ < initial.n || max_limbs_ > kMaxLimbs) {
    throw std::invalid_argument("HpAdaptive: bad max_limbs");
  }
  trace::gauge_set(trace::Gauge::kAdaptiveCurN,
                   static_cast<std::uint64_t>(v_.cfg_.n));
  trace::gauge_set(trace::Gauge::kAdaptiveCurK,
                   static_cast<std::uint64_t>(v_.cfg_.k));
}

void HpAdaptive::check_cap(int new_n) const {
  if (new_n > max_limbs_) {
    throw std::overflow_error("HpAdaptive: growth cap reached");
  }
}

void HpAdaptive::grow_int(int extra_limbs) {
  check_cap(v_.cfg_.n + extra_limbs);
  const util::Limb fill = v_.is_negative() ? ~util::Limb{0} : 0;
  v_.limbs_.insert(v_.limbs_.begin(), static_cast<std::size_t>(extra_limbs),
                   fill);
  v_.cfg_.n += extra_limbs;
  ++growth_events_;
  trace::count(trace::Counter::kAdaptiveGrowInt);
  trace::gauge_set(trace::Gauge::kAdaptiveCurN,
                   static_cast<std::uint64_t>(v_.cfg_.n));
  trace::gauge_set(trace::Gauge::kAdaptiveCurK,
                   static_cast<std::uint64_t>(v_.cfg_.k));
  trace::flight::instant(trace::flight::EventId::kAdaptiveGrow, /*kind=*/0,
                         static_cast<std::uint64_t>(v_.cfg_.n));
}

void HpAdaptive::grow_frac(int extra_limbs) {
  check_cap(v_.cfg_.n + extra_limbs);
  v_.limbs_.insert(v_.limbs_.end(), static_cast<std::size_t>(extra_limbs), 0);
  v_.cfg_.n += extra_limbs;
  v_.cfg_.k += extra_limbs;
  ++growth_events_;
  trace::count(trace::Counter::kAdaptiveGrowFrac);
  trace::gauge_set(trace::Gauge::kAdaptiveCurN,
                   static_cast<std::uint64_t>(v_.cfg_.n));
  trace::gauge_set(trace::Gauge::kAdaptiveCurK,
                   static_cast<std::uint64_t>(v_.cfg_.k));
  trace::flight::instant(trace::flight::EventId::kAdaptiveGrow, /*kind=*/1,
                         static_cast<std::uint64_t>(v_.cfg_.n));
}

void HpAdaptive::recover_add_overflow(bool positive) {
  check_cap(v_.cfg_.n + 1);
  // The wrapped result differs from the true sum by -/+2^(64n). Prepending
  // a limb holding the true sign extension restores it: for a positive
  // overflow the wrapped-value extension would be all-ones, and adding the
  // lost 2^(64n) turns exactly that limb into zero (and vice versa).
  v_.limbs_.insert(v_.limbs_.begin(), positive ? util::Limb{0} : ~util::Limb{0});
  v_.cfg_.n += 1;
  ++growth_events_;
  trace::count(trace::Counter::kAdaptiveRecoverOverflow);
  trace::gauge_set(trace::Gauge::kAdaptiveCurN,
                   static_cast<std::uint64_t>(v_.cfg_.n));
  trace::gauge_set(trace::Gauge::kAdaptiveCurK,
                   static_cast<std::uint64_t>(v_.cfg_.k));
  trace::flight::instant(trace::flight::EventId::kAdaptiveGrow, /*kind=*/2,
                         static_cast<std::uint64_t>(v_.cfg_.n));
}

void HpAdaptive::ensure_exponents(int e_hi, int e_lo) {
  // Integer side: representable iff e_hi + 1 <= 64*(n-k) - 1.
  const int int_limbs_needed = (e_hi + 2 + 63) / 64;  // ceil((e_hi+2)/64)
  const int int_limbs = v_.cfg_.n - v_.cfg_.k;
  if (int_limbs_needed > int_limbs) grow_int(int_limbs_needed - int_limbs);
  // Fraction side: representable iff e_lo >= -64*k.
  if (e_lo < 0) {
    const int frac_limbs_needed = (-e_lo + 63) / 64;  // ceil(-e_lo/64)
    if (frac_limbs_needed > v_.cfg_.k) grow_frac(frac_limbs_needed - v_.cfg_.k);
  }
}

HpAdaptive& HpAdaptive::operator+=(double r) {
  if (!std::isfinite(r)) {
    throw std::invalid_argument("HpAdaptive: non-finite summand");
  }
  if (r == 0.0) return *this;
  ensure_exponents(msb_exponent(r), lsb_exponent(r));
  // Consume ONLY kAddOverflow: the recovery below repairs the wrapped sum,
  // so that flag is handled, but every flag the caller already accumulated
  // (kInexact / kInvalidOp from div_small, ...) — and any non-overflow flag
  // this add raises — must stay sticky like in every other accumulator.
  const HpStatus prior = v_.status();
  v_.clear_status();
  v_ += r;
  if (has(v_.status(), HpStatus::kAddOverflow)) {
    // The running total outgrew the (now sufficient for r alone) range.
    // Overflow direction equals the summand's sign.
    recover_add_overflow(r > 0.0);
  }
  const HpStatus raised = v_.status();
  v_.clear_status();
  v_.status_ = prior | without(raised, HpStatus::kAddOverflow);
  return *this;
}

HpAdaptive& HpAdaptive::operator+=(const HpAdaptive& other) {
  // Unify formats: cover both integer widths and both fraction widths.
  HpAdaptive rhs = other;
  const int int_limbs =
      std::max(v_.cfg_.n - v_.cfg_.k, rhs.v_.cfg_.n - rhs.v_.cfg_.k);
  const int frac_limbs = std::max(v_.cfg_.k, rhs.v_.cfg_.k);
  const auto widen = [&](HpAdaptive& a) {
    const int grow_i = int_limbs - (a.v_.cfg_.n - a.v_.cfg_.k);
    if (grow_i > 0) a.grow_int(grow_i);
    const int grow_f = frac_limbs - a.v_.cfg_.k;
    if (grow_f > 0) a.grow_frac(grow_f);
  };
  widen(*this);
  widen(rhs);

  const bool rhs_positive = !rhs.v_.is_negative();
  // Same sticky-status contract as operator+=(double): consume only the
  // kAddOverflow the recovery repairs; the caller's accumulated flags and
  // the operand's flags stay sticky.
  const HpStatus prior = v_.status() | rhs.v_.status();
  v_.clear_status();
  rhs.v_.clear_status();  // already folded into `prior`; avoid double OR
  v_ += rhs.v_;
  if (has(v_.status(), HpStatus::kAddOverflow)) {
    recover_add_overflow(rhs_positive);
  }
  const HpStatus raised = v_.status();
  v_.clear_status();
  v_.status_ = prior | without(raised, HpStatus::kAddOverflow);
  return *this;
}

}  // namespace hpsum
