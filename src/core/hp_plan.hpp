// Format planning: choosing N and k from what you know about the data.
//
// The paper's §V flaw — "the user must know the range of real numbers to
// be summed, and tailor the HP parameters N and k appropriately" — is a
// sizing calculation. This header makes it executable: describe your data
// (magnitude bounds, summand count) and get the minimal HpConfig that
// guarantees an exact, overflow-free sum; or scan actual data and get the
// format it needs. HpAdaptive remains the fallback when nothing is known.
#pragma once

#include <cstdint>
#include <span>

#include "core/hp_config.hpp"

namespace hpsum {

/// What is known about a summation workload a priori.
struct SumPlan {
  /// Largest |x| any summand can take (must be finite, > 0).
  double max_abs = 1.0;
  /// Smallest nonzero |x| that must be captured exactly. Use 0 to request
  /// full double resolution at max_abs's scale (53 bits below its msb is
  /// NOT enough for exactness of smaller summands — 0 means "resolve
  /// every bit of every summand", i.e. down to max_abs's scale minus 52
  /// and further down to the subnormal floor of the smallest expected
  /// value; pass the real bound when you have one).
  double min_abs = 0.0;
  /// Upper bound on the number of accumulations (headroom so the running
  /// total cannot overflow even if every summand has the same sign).
  std::uint64_t summands = 1;
};

/// Smallest config whose range and resolution satisfy `plan` exactly:
/// every summand converts exactly and summands * max_abs cannot overflow.
/// Throws std::invalid_argument for unsatisfiable plans (would exceed
/// kMaxLimbs) or nonsensical bounds.
[[nodiscard]] HpConfig suggest_config(const SumPlan& plan);

/// True iff `cfg` can run `plan` with zero rounding and zero overflow.
[[nodiscard]] bool satisfies(const HpConfig& cfg, const SumPlan& plan) noexcept;

/// Scans actual data and returns the plan it needs (max/min magnitudes and
/// count). Non-finite values throw std::invalid_argument.
[[nodiscard]] SumPlan plan_for_data(std::span<const double> xs);

}  // namespace hpsum
