// HpFixed<N,K> — the HP method's value type with compile-time format.
//
// This is the type to use in hot loops: N and K are template parameters, so
// the per-limb loops in the conversion and addition kernels unroll fully.
// For a format chosen at runtime use HpDyn (same representation and
// semantics, runtime loop bounds).
//
// Paper configurations used in the evaluation:
//   HpFixed<3,2>  — Fig 1 (perfect precision on cancellation sets)
//   HpFixed<6,3>  — Figs 5-8 (384-bit, vs Hallberg N=10,M=38)
//   HpFixed<8,4>  — Fig 4 (512-bit, vs Hallberg Table 2)
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/hp_config.hpp"
#include "core/hp_convert.hpp"
#include "core/hp_status.hpp"
#include "util/decimal.hpp"
#include "util/limbs.hpp"

namespace hpsum {

/// Fixed-point, order-invariant accumulator: N 64-bit limbs in two's
/// complement, K of them fractional. Addition is pure integer arithmetic,
/// so sums are bit-identical for any summation order, thread count, or
/// architecture. Overflow/underflow conditions accumulate in a sticky
/// status() mask instead of being silently dropped.
template <int N, int K>
class HpFixed {
  static_assert(N >= 1 && N <= kMaxLimbs, "limb count out of range");
  static_assert(K >= 0 && K <= N, "fractional limbs must satisfy 0 <= K <= N");

 public:
  /// Zero value.
  constexpr HpFixed() = default;

  /// Converts a double exactly (if in range; see status()).
  constexpr explicit HpFixed(double r) { *this += r; }

  /// Drains a BlockAccumulator of the same format: flushes its deferred
  /// carry-save planes and takes the normalized limbs + sticky status.
  constexpr explicit HpFixed(BlockAccumulator<N, K>& blk) noexcept {
    const util::ConstLimbSpan out = blk.limbs();  // flushes
    for (std::size_t i = 0; i < static_cast<std::size_t>(N); ++i) {
      limbs_[i] = out[i];
    }
    status_ = blk.status();
  }

  /// The format as a runtime descriptor.
  static constexpr HpConfig config() noexcept { return HpConfig{N, K}; }

  /// Total value-carrying bits (64N - 1; Table 1 discussion).
  static constexpr int precision_bits() noexcept { return 64 * N - 1; }

  /// Largest representable magnitude, 2^(64(N-K)-1) (Table 1 "Max Range").
  static double max_range() noexcept { return hpsum::max_range(config()); }

  /// Smallest positive representable value, 2^-64K (Table 1 "Smallest").
  static double smallest() noexcept { return hpsum::smallest(config()); }

  /// Adds a double through the fused scatter-add fast path: the mantissa
  /// lands directly in the 2-3 affected limbs and the carry/borrow
  /// propagates only until it dies — bit-identical (limbs and status) to
  /// the reference convert+add pair, kept below as add_double_reference()
  /// for differential testing.
  constexpr HpFixed& operator+=(double r) noexcept {
    status_ |= kernel::scatter_add(limbs_.data(), N, K, r);
    return *this;
  }

  /// Adds a block of doubles through the carry-deferred block fast path
  /// (BlockAccumulator): deposits land in per-limb carry-save planes and
  /// carries normalize once per block instead of once per summand.
  /// Bit-identical (limbs and sticky status) to `for (x : xs) *this += x;`
  /// — the differential contract tests/test_block.cpp enforces.
  constexpr HpFixed& accumulate(std::span<const double> xs) noexcept {
    BlockAccumulator<N, K> blk(util::ConstLimbSpan(limbs_.data(), N), status_);
    blk.accumulate(xs);
    const util::ConstLimbSpan out = blk.limbs();  // flushes
    for (std::size_t i = 0; i < static_cast<std::size_t>(N); ++i) {
      limbs_[i] = out[i];
    }
    status_ = blk.status();
    return *this;
  }

  /// The original two-step path (paper Listings 1+2): full-width conversion
  /// into a temporary, then an O(N) carry add. Semantically identical to
  /// operator+=(double); retained as the reference implementation the
  /// scatter fast path is differentially fuzzed against
  /// (tests/test_scatter_add.cpp) and ablated against (bench/ablate_convert).
  constexpr HpFixed& add_double_reference(double r) noexcept {
    trace::count(trace::Counter::kReferenceAddCalls);
    util::Limb tmp[N];
    // Listing 1's float-scaling path needs its scale factors within double
    // exponent range; very wide formats use exact bit placement instead.
    HpStatus cst = HpStatus::kOk;
    if constexpr (N <= 16) {
      cst = detail::from_double_impl(r, tmp, N, K);
    } else {
      cst = detail::from_double_exact(r, tmp, N, K);
    }
    trace::count_status(cst);  // kernel::add below counts its own raises
    status_ |= cst;
    status_ |= kernel::add(limbs_.data(), tmp, N);
    return *this;
  }

  /// Subtracts a double.
  constexpr HpFixed& operator-=(double r) noexcept { return *this += -r; }

  /// Adds a long double exactly (x87 80-bit extended carries a 64-bit
  /// mantissa; no pre-rounding to double happens).
  HpFixed& operator+=(long double r) noexcept {
    util::Limb tmp[N];
    status_ |= detail::from_long_double_exact(r, tmp, N, K);
    status_ |= kernel::add(limbs_.data(), tmp, N);
    return *this;
  }

  /// Subtracts a long double exactly.
  HpFixed& operator-=(long double r) noexcept { return *this += -r; }

  /// Adds another HP value of the same format.
  constexpr HpFixed& operator+=(const HpFixed& other) noexcept {
    status_ |= other.status_;
    status_ |= kernel::add(limbs_.data(), other.limbs_.data(), N);
    return *this;
  }

  /// Subtracts another HP value of the same format (negate-then-add, so
  /// subtracting the most negative value flags kAddOverflow).
  constexpr HpFixed& operator-=(const HpFixed& other) noexcept {
    status_ |= other.status_;
    status_ |= kernel::sub(limbs_.data(), other.limbs_.data(), N);
    return *this;
  }

  friend constexpr HpFixed operator+(HpFixed a, const HpFixed& b) noexcept { return a += b; }
  friend constexpr HpFixed operator-(HpFixed a, const HpFixed& b) noexcept { return a -= b; }

  /// Scales by 2^e exactly (limb/bit shifts — no rounding for e >= 0).
  /// For e < 0 bits below the lsb truncate toward zero (kInexact); for
  /// e > 0 magnitude bits shifted past the range flag kAddOverflow.
  constexpr void scale_pow2(int e) noexcept {
    const bool neg = is_negative();
    if (neg) util::negate_twos(util::LimbSpan(limbs_.data(), N));
    const auto span = util::LimbSpan(limbs_.data(), N);
    if (e > 0) {
      const int msb = util::highest_set_bit(span);
      if (msb >= 0 && msb + e >= 64 * N - 1) {
        status_ |= HpStatus::kAddOverflow;
      }
      util::shift_left_limbs(span, static_cast<std::size_t>(e / 64));
      util::shift_left_bits(span, static_cast<unsigned>(e % 64));
    } else if (e < 0) {
      const int s = -e;
      // Detect truncated bits before shifting.
      if (util::highest_set_bit(span) >= 0) {
        for (int b = 0; b < s && b < 64 * N; ++b) {
          const int li = N - 1 - b / 64;
          if ((limbs_[static_cast<std::size_t>(li)] >> (b % 64)) & 1u) {
            status_ |= HpStatus::kInexact;
            break;
          }
        }
      }
      util::shift_right_limbs(span, static_cast<std::size_t>(s / 64));
      util::shift_right_bits(span, static_cast<unsigned>(s % 64));
    }
    if (neg) util::negate_twos(span);
  }

  /// Divides by a small positive integer exactly at lsb resolution
  /// (truncation toward zero); returns the remainder in lsb units.
  /// Together with the summand count this yields exact means:
  /// mean = (sum / n) with sub-lsb remainder reported, order-invariant.
  /// d == 0 violates the divisor precondition: the value is left unchanged,
  /// the remainder is 0, and kInvalidOp is raised (the sticky-status idiom
  /// — this is a public noexcept API, so the precondition cannot be UB).
  constexpr std::uint64_t div_small(std::uint64_t d) noexcept {
    if (d == 0) {
      status_ |= HpStatus::kInvalidOp;
      return 0;
    }
    const bool neg = is_negative();
    const auto span = util::LimbSpan(limbs_.data(), N);
    if (neg) util::negate_twos(span);
    const std::uint64_t rem = util::divmod_small(span, d);
    if (neg) util::negate_twos(span);
    if (rem != 0) status_ |= HpStatus::kInexact;
    return rem;
  }

  /// Two's complement negation in place. Negating the most negative value
  /// (-2^(64N-1)) overflows and is flagged.
  constexpr void negate() noexcept {
    status_ |= kernel::negate(limbs_.data(), N);
  }

  /// Rounds to the nearest double (ties to even). The single rounding of
  /// the whole accumulated sum.
  [[nodiscard]] constexpr double to_double() const noexcept {
    double out = 0.0;
    // hplint: allow(discard-status) — value-only query on a const object;
    // the overload below reports the rounding/overflow status
    detail::to_double_impl(limbs_.data(), N, K, &out);
    return out;
  }

  /// As to_double(), but also reports conversion status (range overflow /
  /// subnormal truncation) into `st`.
  [[nodiscard]] constexpr double to_double(HpStatus& st) const noexcept {
    double out = 0.0;
    st |= detail::to_double_impl(limbs_.data(), N, K, &out);
    return out;
  }

  /// Exact decimal rendering (see util::to_decimal_string).
  [[nodiscard]] std::string to_decimal_string(std::size_t max_frac_digits = 0) const {
    return util::to_decimal_string(util::ConstLimbSpan(limbs_.data(), N), K,
                                   max_frac_digits);
  }

  /// Parses an exact decimal string — the inverse of to_decimal_string(),
  /// for lossless round trips through text logs and checkpoints. Throws
  /// std::invalid_argument on syntax errors; range/precision violations
  /// surface as status flags.
  static HpFixed from_decimal_string(std::string_view s) {
    HpFixed out;
    switch (util::parse_decimal(s, util::LimbSpan(out.limbs_.data(), N), K)) {
      case util::ParseResult::kOk:
        break;
      case util::ParseResult::kInexact:
        out.status_ |= HpStatus::kInexact;
        break;
      case util::ParseResult::kOverflow:
        out.status_ |= HpStatus::kConvertOverflow;
        break;
      case util::ParseResult::kSyntax:
        throw std::invalid_argument("HpFixed: invalid decimal string");
    }
    return out;
  }

  /// True iff the value is negative (sign bit set).
  [[nodiscard]] constexpr bool is_negative() const noexcept { return (limbs_[0] >> 63) != 0; }

  /// True iff the value is exactly zero.
  [[nodiscard]] constexpr bool is_zero() const noexcept {
    return util::is_zero(util::ConstLimbSpan(limbs_.data(), N));
  }

  /// Sticky status accumulated by every operation since the last clear.
  [[nodiscard]] constexpr HpStatus status() const noexcept { return status_; }

  /// Clears the sticky status.
  constexpr void clear_status() noexcept { status_ = HpStatus::kOk; }

  /// ORs externally detected conditions into the sticky status (used by
  /// code that assembles limbs directly — deserialization, the device
  /// reductions — so no observed flag is ever dropped on the floor).
  constexpr void or_status(HpStatus s) noexcept { status_ |= s; }

  /// Resets to zero and clears status.
  constexpr void clear() noexcept {
    limbs_.fill(0);
    status_ = HpStatus::kOk;
  }

  /// Bit-exact equality (well-defined: the representation is canonical,
  /// unlike Hallberg's aliased encodings).
  friend constexpr bool operator==(const HpFixed& a, const HpFixed& b) noexcept {
    return a.limbs_ == b.limbs_;
  }

  /// Numeric ordering.
  friend constexpr std::strong_ordering operator<=>(const HpFixed& a, const HpFixed& b) noexcept {
    return kernel::compare(a.limbs_.data(), b.limbs_.data(), N) <=> 0;
  }

  /// Raw limbs, big-endian (limbs()[0] most significant). Exposed for
  /// serialization (mpisim datatypes) and for the atomic accumulator.
  [[nodiscard]] constexpr const std::array<util::Limb, N>& limbs() const noexcept {
    return limbs_;
  }

  /// Mutable raw limbs (deserialization). Caller owns canonical-form duty.
  [[nodiscard]] constexpr std::array<util::Limb, N>& limbs() noexcept { return limbs_; }

 private:
  std::array<util::Limb, N> limbs_{};
  HpStatus status_ = HpStatus::kOk;
};

}  // namespace hpsum
