#include "core/hp_kernel.hpp"

#include <cassert>

namespace hpsum {

HpStatus hp_add(util::LimbSpan a, util::ConstLimbSpan b) noexcept {
  assert(a.size() == b.size());
  return detail::add_impl(a.data(), b.data(), static_cast<int>(a.size()));
}

HpStatus hp_scatter_add(util::LimbSpan limbs, const HpConfig& cfg,
                        double r) noexcept {
  assert(limbs.size() == static_cast<std::size_t>(cfg.n));
  return detail::scatter_add_double(limbs.data(), cfg.n, cfg.k, r);
}

}  // namespace hpsum
