#include "core/hp_dyn.hpp"

#include <cstring>
#include <stdexcept>

#include "core/hp_convert.hpp"
#include "util/decimal.hpp"

namespace hpsum {

HpDyn::HpDyn(HpConfig cfg) : cfg_(cfg) {
  validate(cfg);
  if (cfg.n > kMaxLimbs) {
    throw std::length_error("HpDyn: limb count exceeds kMaxLimbs");
  }
  limbs_.assign(static_cast<std::size_t>(cfg.n), 0);
}

HpDyn::HpDyn(HpConfig cfg, double r) : HpDyn(cfg) { *this += r; }

HpDyn HpDyn::from_decimal_string(std::string_view s, HpConfig cfg) {
  HpDyn out(cfg);
  switch (util::parse_decimal(s, out.limbs(),
                              static_cast<std::size_t>(cfg.k))) {
    case util::ParseResult::kOk:
      break;
    case util::ParseResult::kInexact:
      out.status_ |= HpStatus::kInexact;
      break;
    case util::ParseResult::kOverflow:
      out.status_ |= HpStatus::kConvertOverflow;
      break;
    case util::ParseResult::kSyntax:
      throw std::invalid_argument("HpDyn: invalid decimal string");
  }
  return out;
}

HpDyn& HpDyn::operator+=(double r) noexcept {
  // Fused scatter-add fast path — bit-identical (limbs and status) to the
  // reference hp_from_double-into-a-temporary + hp_add pair, which remains
  // available as add_double_reference() for differential testing.
  status_ |= hp_scatter_add(limbs(), cfg_, r);
  return *this;
}

HpDyn& HpDyn::accumulate(std::span<const double> xs) noexcept {
  trace::count(trace::Counter::kBlockAccumulates);
  const int n = cfg_.n;
  // n+1 plane slots (kernel::block_flush's layout: slot 0 is the pad);
  // sized for the widest format.
  kernel::U128 pos[kMaxLimbs + 1] = {};
  kernel::U128 neg[kMaxLimbs + 1] = {};
  int bound_exp = kernel::block_bound_exp(limbs_.data(), n);
  int pending = 0;
  status_ |= kernel::block_accumulate(limbs_.data(), pos, neg, n, cfg_.k,
                                      bound_exp, pending, xs);
  kernel::block_flush(limbs_.data(), pos, neg, n, bound_exp, pending);
  return *this;
}

HpDyn& HpDyn::add_double_reference(double r) noexcept {
  trace::count(trace::Counter::kReferenceAddCalls);
  util::Limb tmp[kMaxLimbs];
  const auto span = util::LimbSpan(tmp, limbs_.size());
  const HpStatus cst = hp_from_double(r, span, cfg_);
  trace::count_status(cst);  // hp_add's add_impl counts its own raises
  status_ |= cst;
  status_ |= hp_add(limbs(), span);
  return *this;
}

HpDyn& HpDyn::operator+=(const HpDyn& other) {
  if (other.cfg_ != cfg_) {
    throw std::invalid_argument("HpDyn: mixed formats in +=");
  }
  status_ |= other.status_;
  status_ |= hp_add(limbs(), other.limbs());
  return *this;
}

HpDyn& HpDyn::operator-=(const HpDyn& other) {
  if (other.cfg_ != cfg_) {
    throw std::invalid_argument("HpDyn: mixed formats in -=");
  }
  status_ |= other.status_;
  status_ |= kernel::sub(limbs_.data(), other.limbs_.data(), cfg_.n);
  return *this;
}

void HpDyn::negate() noexcept {
  status_ |= kernel::negate(limbs_.data(), cfg_.n);
}

void HpDyn::scale_pow2(int e) noexcept {
  const int n = cfg_.n;
  const bool neg = is_negative();
  const auto span = limbs();
  if (neg) util::negate_twos(span);
  if (e > 0) {
    const int msb = util::highest_set_bit(span);
    if (msb >= 0 && msb + e >= 64 * n - 1) status_ |= HpStatus::kAddOverflow;
    util::shift_left_limbs(span, static_cast<std::size_t>(e / 64));
    util::shift_left_bits(span, static_cast<unsigned>(e % 64));
  } else if (e < 0) {
    const int s = -e;
    for (int b = 0; b < s && b < 64 * n; ++b) {
      const int li = n - 1 - b / 64;
      if ((limbs_[static_cast<std::size_t>(li)] >> (b % 64)) & 1u) {
        status_ |= HpStatus::kInexact;
        break;
      }
    }
    util::shift_right_limbs(span, static_cast<std::size_t>(s / 64));
    util::shift_right_bits(span, static_cast<unsigned>(s % 64));
  }
  if (neg) util::negate_twos(span);
}

std::uint64_t HpDyn::div_small(std::uint64_t d) noexcept {
  if (d == 0) {
    // util::divmod_small requires d != 0; this is a public noexcept API, so
    // report the misuse through the sticky status instead of UB.
    status_ |= HpStatus::kInvalidOp;
    return 0;
  }
  const bool neg = is_negative();
  const auto span = limbs();
  if (neg) util::negate_twos(span);
  const std::uint64_t rem = util::divmod_small(span, d);
  if (neg) util::negate_twos(span);
  if (rem != 0) status_ |= HpStatus::kInexact;
  return rem;
}

double HpDyn::to_double() const noexcept {
  double out = 0.0;
  // hplint: allow(discard-status) — value-only query on a const object;
  // callers who care use the to_double(HpStatus&) overload below
  hp_to_double(limbs(), cfg_, &out);
  return out;
}

double HpDyn::to_double(HpStatus& st) const noexcept {
  double out = 0.0;
  st |= hp_to_double(limbs(), cfg_, &out);
  return out;
}

std::string HpDyn::to_decimal_string(std::size_t max_frac_digits) const {
  return util::to_decimal_string(limbs(), static_cast<std::size_t>(cfg_.k),
                                 max_frac_digits);
}

bool HpDyn::is_negative() const noexcept { return (limbs_[0] >> 63) != 0; }

bool HpDyn::is_zero() const noexcept { return util::is_zero(limbs()); }

void HpDyn::clear() noexcept {
  std::fill(limbs_.begin(), limbs_.end(), 0);
  status_ = HpStatus::kOk;
}

void HpDyn::to_bytes(std::byte* out) const noexcept {
  // Explicit little-endian so the wire image matches serialize()'s limb
  // encoding on every host (docs/FORMAT.md "Limb-image wire format"). The
  // image carries limbs ONLY: the sticky status (and the format) must
  // travel out of band — see serialize() for the self-describing container.
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const util::Limb v = limbs_[i];
    for (int b = 0; b < 8; ++b) {
      out[8 * i + static_cast<std::size_t>(b)] =
          static_cast<std::byte>(v >> (8 * b));
    }
  }
}

void HpDyn::from_bytes(const std::byte* in) noexcept {
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    util::Limb v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<util::Limb>(in[8 * i + static_cast<std::size_t>(b)])
           << (8 * b);
    }
    limbs_[i] = v;
  }
}

}  // namespace hpsum
