// Status flags for HP arithmetic.
//
// The paper (§III.B.1) identifies three places overflow can occur —
// double→HP conversion, HP+HP addition, and HP→double conversion — and
// notes underflow at the conversions. Every kernel in this library reports
// which of these happened via a sticky bitmask instead of silently wrapping,
// so callers can choose between checking per-operation and checking once
// after a multimillion-element reduction.
#pragma once

#include <cstdint>
#include <string>

namespace hpsum {

/// Bitmask of exceptional conditions. Flags are sticky: kernels OR new
/// conditions into an accumulator owned by the caller.
enum class HpStatus : std::uint8_t {
  kOk = 0,
  /// |value| exceeded the HP range during double→HP conversion.
  kConvertOverflow = 1u << 0,
  /// The sum of two in-range HP values left the representable range
  /// (operand signs equal, result sign differs).
  kAddOverflow = 1u << 1,
  /// The HP value exceeded double range when converting back (only possible
  /// for configs whose range tops 2^1024; kept for completeness).
  kToDoubleOverflow = 1u << 2,
  /// The double carried significant bits below the HP lsb; they were
  /// truncated toward zero (the paper's conversion underflow).
  kInexact = 1u << 3,
  /// The HP value has nonzero bits below the smallest double (subnormal
  /// floor); HP→double rounding lost them.
  kToDoubleInexact = 1u << 4,
  /// An operation's precondition was violated (currently: div_small with a
  /// zero divisor). The value is left unchanged; noexcept APIs report the
  /// misuse here instead of invoking UB.
  kInvalidOp = 1u << 5,
};

/// Bitmask of every defined flag. Deserializers validate incoming status
/// bytes against this so corrupt input cannot plant undefined sticky bits.
inline constexpr std::uint8_t kHpStatusMask =
    static_cast<std::uint8_t>(HpStatus::kConvertOverflow) |
    static_cast<std::uint8_t>(HpStatus::kAddOverflow) |
    static_cast<std::uint8_t>(HpStatus::kToDoubleOverflow) |
    static_cast<std::uint8_t>(HpStatus::kInexact) |
    static_cast<std::uint8_t>(HpStatus::kToDoubleInexact) |
    static_cast<std::uint8_t>(HpStatus::kInvalidOp);

/// Combines two status masks.
constexpr HpStatus operator|(HpStatus a, HpStatus b) noexcept {
  return static_cast<HpStatus>(static_cast<std::uint8_t>(a) |
                               static_cast<std::uint8_t>(b));
}

/// Accumulates `b` into `a` (sticky OR).
constexpr HpStatus& operator|=(HpStatus& a, HpStatus b) noexcept {
  a = a | b;
  return a;
}

/// Removes the flags of `b` from `a` — for consuming a condition that has
/// been handled (e.g. HpAdaptive repairing kAddOverflow) while leaving
/// every other flag sticky.
constexpr HpStatus without(HpStatus a, HpStatus b) noexcept {
  return static_cast<HpStatus>(
      static_cast<std::uint8_t>(a) &
      static_cast<std::uint8_t>(~static_cast<std::uint8_t>(b)));
}

/// Tests whether `a` contains all flags of `b`.
constexpr bool has(HpStatus a, HpStatus b) noexcept {
  return (static_cast<std::uint8_t>(a) & static_cast<std::uint8_t>(b)) ==
         static_cast<std::uint8_t>(b);
}

/// True iff any overflow flag is set (the conditions that corrupt a sum, as
/// opposed to kInexact which only truncates precision).
constexpr bool any_overflow(HpStatus s) noexcept {
  return (static_cast<std::uint8_t>(s) &
          (static_cast<std::uint8_t>(HpStatus::kConvertOverflow) |
           static_cast<std::uint8_t>(HpStatus::kAddOverflow) |
           static_cast<std::uint8_t>(HpStatus::kToDoubleOverflow))) != 0;
}

/// Human-readable flag list, e.g. "convert-overflow|inexact".
inline std::string to_string(HpStatus s) {
  if (s == HpStatus::kOk) return "ok";
  std::string out;
  const auto append = [&](HpStatus flag, const char* name) {
    if (has(s, flag)) {
      if (!out.empty()) out += '|';
      out += name;
    }
  };
  append(HpStatus::kConvertOverflow, "convert-overflow");
  append(HpStatus::kAddOverflow, "add-overflow");
  append(HpStatus::kToDoubleOverflow, "to-double-overflow");
  append(HpStatus::kInexact, "inexact");
  append(HpStatus::kToDoubleInexact, "to-double-inexact");
  append(HpStatus::kInvalidOp, "invalid-op");
  return out;
}

}  // namespace hpsum
