// HpDyn — HP value with a format chosen at runtime.
//
// Same representation and semantics as HpFixed<N,K>, but N and k come from
// an HpConfig. This is the type the message-passing datatypes, the
// parameter-sweep benches, and HpAdaptive build on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/hp_config.hpp"
#include "core/hp_status.hpp"
#include "util/limbs.hpp"

namespace hpsum {

/// Runtime-formatted order-invariant accumulator.
class HpDyn {
 public:
  /// Zero value of the given format. Throws std::invalid_argument for an
  /// invalid config and std::length_error beyond kMaxLimbs.
  explicit HpDyn(HpConfig cfg);

  /// Converts a double (exactly if in range; see status()).
  HpDyn(HpConfig cfg, double r);

  /// Parses an exact decimal string ("[-]digits[.digits]") — the inverse
  /// of to_decimal_string(), so HP values round-trip through text logs and
  /// checkpoints losslessly. Throws std::invalid_argument on syntax
  /// errors; range/precision violations come back as status flags
  /// (kConvertOverflow with a zero value, or kInexact).
  static HpDyn from_decimal_string(std::string_view s, HpConfig cfg);

  /// The format.
  [[nodiscard]] HpConfig config() const noexcept { return cfg_; }

  /// Adds a double through the fused scatter-add fast path (mantissa lands
  /// directly in the affected limbs; carry propagates only until it dies).
  HpDyn& operator+=(double r) noexcept;

  /// The original two-step convert+add path, bit-identical to operator+=
  /// in limbs and status; retained as the reference implementation for
  /// differential testing and the scatter ablation bench.
  HpDyn& add_double_reference(double r) noexcept;

  /// Adds a block of doubles through the carry-deferred block fast path
  /// (kernel::block_add/block_flush): bit-identical, limbs and sticky
  /// status, to adding each element with operator+=(double) in order.
  HpDyn& accumulate(std::span<const double> xs) noexcept;

  /// Subtracts a double.
  HpDyn& operator-=(double r) noexcept { return *this += -r; }

  /// Adds another HP value. Formats must match (checked, throws
  /// std::invalid_argument).
  HpDyn& operator+=(const HpDyn& other);

  /// Subtracts another HP value of the same format.
  HpDyn& operator-=(const HpDyn& other);

  /// Two's complement negation in place.
  void negate() noexcept;

  /// Scales by 2^e exactly; see HpFixed::scale_pow2 for semantics.
  void scale_pow2(int e) noexcept;

  /// Divides by a small positive integer (truncation toward zero);
  /// returns the remainder in lsb units. See HpFixed::div_small.
  std::uint64_t div_small(std::uint64_t d) noexcept;

  /// Rounds to the nearest double (ties to even).
  [[nodiscard]] double to_double() const noexcept;

  /// As to_double(), but ORs the conversion status (range overflow /
  /// subnormal truncation) into `st`.
  [[nodiscard]] double to_double(HpStatus& st) const noexcept;

  /// Exact decimal rendering.
  [[nodiscard]] std::string to_decimal_string(std::size_t max_frac_digits = 0) const;

  /// True iff negative.
  [[nodiscard]] bool is_negative() const noexcept;

  /// True iff exactly zero.
  [[nodiscard]] bool is_zero() const noexcept;

  /// Sticky status; see HpStatus.
  [[nodiscard]] HpStatus status() const noexcept { return status_; }
  void clear_status() noexcept { status_ = HpStatus::kOk; }

  /// ORs externally detected conditions into the sticky status (used by
  /// interop code that assembles limbs directly, e.g. Hallberg::to_hp).
  void or_status(HpStatus s) noexcept { status_ |= s; }

  /// Resets to zero and clears status.
  void clear() noexcept;

  /// Bit-exact equality (formats and limbs).
  friend bool operator==(const HpDyn& a, const HpDyn& b) noexcept {
    return a.cfg_ == b.cfg_ && a.limbs_ == b.limbs_;
  }

  /// Raw limbs, big-endian.
  [[nodiscard]] util::ConstLimbSpan limbs() const noexcept {
    return {limbs_.data(), limbs_.size()};
  }
  [[nodiscard]] util::LimbSpan limbs() noexcept {
    return {limbs_.data(), limbs_.size()};
  }

  /// Serialized size in bytes (limbs only; format travels out of band).
  [[nodiscard]] std::size_t byte_size() const noexcept {
    return limbs_.size() * sizeof(util::Limb);
  }

  /// Writes the limb-image wire format (docs/FORMAT.md): limbs
  /// most-significant-first, each little-endian, byte_size() bytes total.
  /// The image carries limbs ONLY — the format and the sticky status must
  /// travel out of band (the mpisim reductions OR-reduce a status byte
  /// alongside the values). For self-contained storage such as checkpoints,
  /// use serialize()/deserialize(), which carry format AND status; a raw
  /// to_bytes checkpoint of a flagged partial would restore clean.
  void to_bytes(std::byte* out) const noexcept;

  /// Replaces the limbs from a byte image produced by to_bytes() with the
  /// same format. Does not touch the sticky status (see to_bytes).
  void from_bytes(const std::byte* in) noexcept;

 private:
  friend class HpAdaptive;
  HpConfig cfg_;
  std::vector<util::Limb> limbs_;
  HpStatus status_ = HpStatus::kOk;
};

}  // namespace hpsum
