#include "core/hp_plan.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace hpsum {

namespace {

/// ceil(log2(s)) for s >= 1.
int ceil_log2(std::uint64_t s) noexcept {
  return (s <= 1) ? 0 : 64 - std::countl_zero(s - 1);
}

/// Msb exponent the running total can reach: summands * max_abs.
int top_exponent(const SumPlan& plan) noexcept {
  return std::ilogb(plan.max_abs) + 1 + ceil_log2(plan.summands);
}

/// Lowest lsb exponent any summand can carry.
int bottom_exponent(const SumPlan& plan) noexcept {
  if (plan.min_abs == 0.0 || plan.min_abs < std::ldexp(1.0, -1022)) {
    return -1074;  // subnormal floor: resolve every possible bit
  }
  return std::ilogb(plan.min_abs) - 52;
}

void check_plan(const SumPlan& plan) {
  if (!std::isfinite(plan.max_abs) || plan.max_abs < 0.0 ||
      !std::isfinite(plan.min_abs) || plan.min_abs < 0.0 ||
      (plan.max_abs > 0.0 && plan.min_abs > plan.max_abs) ||
      plan.summands < 1) {
    throw std::invalid_argument("SumPlan: inconsistent bounds");
  }
}

}  // namespace

HpConfig suggest_config(const SumPlan& plan) {
  check_plan(plan);
  if (plan.max_abs == 0.0) return HpConfig{1, 0};  // all zeros: anything works

  const int e_top = top_exponent(plan);
  const int e_bot = bottom_exponent(plan);

  // Integer side: need 64*(n-k) - 1 > e_top, i.e. int bits >= e_top + 2.
  const int int_limbs = std::max(0, (e_top + 2 + 63) / 64);
  // Fraction side: need -64k <= e_bot.
  const int k = e_bot < 0 ? (-e_bot + 63) / 64 : 0;
  const int n = std::max(1, int_limbs + k);
  if (n > kMaxLimbs) {
    throw std::invalid_argument(
        "suggest_config: plan needs more than kMaxLimbs limbs");
  }
  return HpConfig{n, k};
}

bool satisfies(const HpConfig& cfg, const SumPlan& plan) noexcept {
  if (plan.max_abs == 0.0) return true;
  // Reject exactly what check_plan rejects — in particular a NaN/Inf
  // min_abs, which would otherwise flow into std::ilogb below and return a
  // garbage verdict instead of "this plan is invalid".
  if (plan.max_abs < 0.0 || plan.min_abs < 0.0 || plan.summands < 1 ||
      !std::isfinite(plan.max_abs) || !std::isfinite(plan.min_abs) ||
      plan.min_abs > plan.max_abs) {
    return false;
  }
  return max_exponent(cfg) > top_exponent(plan) &&
         min_exponent(cfg) <= bottom_exponent(plan);
}

SumPlan plan_for_data(std::span<const double> xs) {
  SumPlan plan;
  plan.max_abs = 0.0;
  plan.min_abs = 0.0;
  plan.summands = xs.empty() ? 1 : xs.size();
  for (const double x : xs) {
    if (!std::isfinite(x)) {
      throw std::invalid_argument("plan_for_data: non-finite value");
    }
    const double mag = std::fabs(x);
    if (mag == 0.0) continue;
    if (mag > plan.max_abs) plan.max_abs = mag;
    if (plan.min_abs == 0.0 || mag < plan.min_abs) plan.min_abs = mag;
  }
  return plan;
}

}  // namespace hpsum
