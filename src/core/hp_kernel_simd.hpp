// hp_kernel_simd — the vectorized batch-deposit path over the block planes.
//
// kernel::block_accumulate (core/hp_kernel.hpp) is the facade every span
// consumer routes through (HpFixed/HpDyn::accumulate, reduce_hp, the
// backends' whole-slice accumulators, rblas, the mpisim op). At runtime it
// dispatches here: a batch of kWidth doubles is decomposed in vector lanes
// (exponent extract, mantissa split, sign select) and deposited into the
// positive/negative carry-save planes, instead of paying the scalar
// decompose's branch tree once per summand.
//
// Implementations, selected at configure time (-DHPSUM_SIMD=...):
//
//   AVX2     — x86 intrinsics (hp_kernel_simd_avx2.cpp, compiled -mavx2).
//   GENERIC  — GCC vector extensions (hp_kernel_simd.cpp); the compiler
//              lowers the lanes to whatever the baseline ISA offers, or
//              scalarizes them — either way the algorithm is identical.
//   AUTO     — compile both (when the compiler supports -mavx2) and pick
//              AVX2 at runtime iff the CPU reports it; GENERIC otherwise.
//   OFF      — kernel::block_accumulate keeps the pure-scalar block_add
//              loop; this translation unit still builds so active_level()
//              stays linkable (it reports kOff).
//
// Bit-identity argument (docs/KERNELS.md has the long form): a batch is
// vector-deposited only when every lane is a NORMAL double whose mantissa
// lands fully inside the limb array (no truncation below 2^-64k, msb at
// most 64n-2). Such deposits raise no status flags and are deferred into
// the planes, where addition is commutative over Z/2^(64n) — so any
// batching order equals the scalar element-at-a-time order. The deferral
// bound is maintained conservatively per batch
// (max(bound_exp, max_msb+1) + kWidth >= the scalar per-element recurrence),
// which can only force the flush + scalar fallback EARLIER than the scalar
// path would — and the fallback is bit-identical by construction. Any batch
// containing a slow lane (zero, subnormal, non-finite, sub-lsb truncation,
// near-range, or a bound violation) is punted whole, in stream order, to
// the scalar kernel::block_add. Limbs AND sticky status therefore match
// the scalar kernel exactly; tests/test_block.cpp fuzzes the equivalence.
#pragma once

#include <span>

#include "core/hp_status.hpp"
#include "util/limbs.hpp"

// Defined PUBLIC (0 or 1) on hpsum_core by src/core/CMakeLists.txt from the
// HPSUM_SIMD configure option, so every target in the build agrees on the
// shape of the inline kernel::block_accumulate (ODR). The out-of-build
// default is the conservative scalar path.
#ifndef HPSUM_SIMD_DISPATCH
#define HPSUM_SIMD_DISPATCH 0
#endif

namespace hpsum::kernel::simd {

__extension__ using U128 = unsigned __int128;

/// Lanes per batch. Batches are processed whole: a tail shorter than
/// kWidth (and any batch with a slow lane) takes the scalar deposit.
inline constexpr int kWidth = 8;

/// Which implementation block_accumulate dispatches to at runtime.
enum class Level { kOff, kGeneric, kAvx2 };

/// The resolved dispatch level: configure-time HPSUM_SIMD combined with
/// the runtime CPU check (AUTO builds only use AVX2 when the CPU has it).
[[nodiscard]] Level active_level() noexcept;

/// Stable lowercase name for exports/banners: "off", "generic", "avx2".
[[nodiscard]] const char* level_name(Level level) noexcept;

/// The runtime batched deposit behind kernel::block_accumulate. Same
/// contract and same state as kernel::block_add driven per element —
/// bit-identical limbs and sticky status — but never usable in constant
/// evaluation (the facade keeps the scalar loop for that).
[[nodiscard]] HpStatus accumulate(util::Limb* a, U128* pos, U128* neg, int n,
                                  int k, int& bound_exp, int& pending,
                                  std::span<const double> xs) noexcept;

}  // namespace hpsum::kernel::simd
