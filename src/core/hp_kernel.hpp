// hp_kernel — the single home of the paper's limb-level arithmetic.
//
// Every accumulation path in the tree (HpFixed, HpDyn, HpAtomic, HpAdaptive
// recovery, reduce_hp, the backends' HpSum, rblas, and the mpisim / cudasim /
// phisim reductions) routes through the primitives in this header; hplint
// rule L6 (duplicate-kernel) mechanically bans re-implementations elsewhere.
// The layering is:
//
//   detail::   — the kernel bodies: carry-propagating add (paper Listing 2),
//                subtract, two's-complement negate, the fused scatter-add
//                deposit, and the Deposit decomposition they share. Function
//                names here (add_impl, scatter_add_double, ...) are the
//                tokens L6 polices outside src/core/hp_kernel.*.
//   kernel::   — the public entry points over raw big-endian limb arrays:
//                add/sub/negate/compare/scatter_add, a generic atomic_add
//                over any fetch-add primitive (HpAtomic's CAS loop, its
//                fetch_add ablation, and the cudasim device adder are all
//                instantiations), and the carry-deferred block kernel
//                (block_add / block_flush / block_bound_exp).
//   BlockAccumulator<N,K> — the block fast path as a value type: deposits
//                a stream of doubles into per-limb carry-save partials
//                (unsigned __int128 planes, one positive one negative) and
//                normalizes carries once per block instead of once per
//                summand (Neal's small-superaccumulator batching, arXiv
//                1505.05571). Provably bit-identical — limbs AND sticky
//                status — to the sequential scalar operator+=(double) path;
//                tests/test_block.cpp holds the differential fuzz and
//                constexpr proofs, docs/KERNELS.md the invariant argument.
//
// All double-path kernels are constexpr and libm-free (IEEE fields via
// std::bit_cast), so the whole deposit -> defer -> normalize pipeline can be
// evaluated at compile time.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <type_traits>

#include "core/hp_config.hpp"
#include "core/hp_kernel_simd.hpp"
#include "core/hp_status.hpp"
#include "trace/trace.hpp"
#include "util/annotations.hpp"
#include "util/limbs.hpp"

namespace hpsum {

namespace detail {

/// 2^e as a double for -1022 <= e <= 1023, computable at compile time.
constexpr double pow2(int e) noexcept {
  return std::bit_cast<double>(static_cast<std::uint64_t>(1023 + e) << 52);
}

/// IEEE-754 binary64 field accessors (constexpr stand-ins for isfinite &c).
constexpr std::uint64_t f64_bits(double r) noexcept {
  return std::bit_cast<std::uint64_t>(r);
}
constexpr int f64_biased_exp(double r) noexcept {
  return static_cast<int>((f64_bits(r) >> 52) & 0x7FF);
}
constexpr bool f64_is_finite(double r) noexcept {
  return f64_biased_exp(r) != 0x7FF;
}
constexpr double f64_abs(double r) noexcept {
  return std::bit_cast<double>(f64_bits(r) & ~(std::uint64_t{1} << 63));
}

/// Single-limb add with intentional mod-2^64 wrap, for call sites (lambdas,
/// expression contexts) where the function-level wrap attribute can't go.
HPSUM_ALLOW_UNSIGNED_WRAP
[[nodiscard]] constexpr util::Limb wrap_add(util::Limb a,
                                            util::Limb b) noexcept {
  return a + b;
}

/// HP += HP (paper Listing 2): limb-wise addition from the least significant
/// limb upward, with explicit carry propagation. Detects overflow by the
/// sign rule the paper gives (§III.A): same-sign operands whose sum has the
/// opposite sign. Unsigned wraparound is the mechanism, not an accident.
HPSUM_ALLOW_UNSIGNED_WRAP
[[nodiscard]] constexpr HpStatus add_impl(util::Limb* a, const util::Limb* b,
                                          int n) noexcept {
  const bool sa = (a[0] >> 63) != 0;
  const bool sb = (b[0] >> 63) != 0;
  if (n == 1) {
    a[0] += b[0];
  } else {
    a[n - 1] = a[n - 1] + b[n - 1];
    bool co = a[n - 1] < b[n - 1];
    for (int i = n - 2; i >= 1; --i) {
      a[i] = a[i] + b[i] + static_cast<util::Limb>(co);
      co = (a[i] == b[i]) ? co : (a[i] < b[i]);
    }
    a[0] = a[0] + b[0] + static_cast<util::Limb>(co);
  }
  const bool sr = (a[0] >> 63) != 0;
  const HpStatus st =
      (sa == sb && sr != sa) ? HpStatus::kAddOverflow : HpStatus::kOk;
  trace::count_status(st);
  return st;
}

/// Two's-complement negation in place with the overflow rule: the most
/// negative value (-2^(64n-1)) has no positive counterpart — it negates to
/// itself and kAddOverflow is returned. (No trace probe here: the raise is
/// counted by whichever status-counting operation consumes the flag.)
[[nodiscard]] constexpr HpStatus negate_impl(util::Limb* a, int n) noexcept {
  const bool was_min =
      a[0] == (util::Limb{1} << 63) &&
      util::is_zero(
          util::ConstLimbSpan(a + 1, static_cast<std::size_t>(n - 1)));
  util::negate_twos(util::LimbSpan(a, static_cast<std::size_t>(n)));
  return was_min ? HpStatus::kAddOverflow : HpStatus::kOk;
}

/// HP -= HP as negate-then-add, so the status semantics are exactly those
/// of the subtraction the accumulator types always performed: kAddOverflow
/// if b is the most negative value (unnegatable) or if the add overflows.
[[nodiscard]] constexpr HpStatus sub_impl(util::Limb* a, const util::Limb* b,
                                          int n) noexcept {
  util::Limb tmp[kMaxLimbs] = {};
  for (int i = 0; i < n; ++i) tmp[i] = b[i];
  HpStatus st = negate_impl(tmp, n);
  st |= add_impl(a, tmp, n);
  return st;
}

/// Three-way two's-complement comparison: -1, 0, or +1.
[[nodiscard]] constexpr int compare_impl(const util::Limb* a,
                                         const util::Limb* b, int n) noexcept {
  return util::compare_twos(
      util::ConstLimbSpan(a, static_cast<std::size_t>(n)),
      util::ConstLimbSpan(b, static_cast<std::size_t>(n)));
}

/// Where a double lands in an (n,k) limb array: the deposit decomposition
/// shared by the scalar scatter-add and the block fast path. `st` carries
/// the conversion-side flags (kInexact truncation / kConvertOverflow);
/// `has_bits` is false when nothing reaches the limbs (zero, sub-lsb
/// truncation to nothing, non-finite, out of range) and the caller must
/// just return `st` with the accumulator untouched.
struct Deposit {
  HpStatus st = HpStatus::kOk;
  bool has_bits = false;
  bool isneg = false;
  int li = 0;              ///< limb index of the mantissa's low word
  int msb = 0;             ///< storage-bit index of the mantissa msb
  util::Limb lo = 0;       ///< bits for limb li
  util::Limb hi = 0;       ///< straddle bits for limb li-1 (0 when aligned)
};

/// Decomposes `r` for an (n,k) format. Same bit-placement math as
/// from_double_exact: a normal double is (2^52|frac) * 2^(E-1075), a
/// subnormal is frac * 2^-1074; the mantissa lsb lands at storage bit
/// p = weight-of-lsb + 64k (bit 0 = lsb of limb n-1).
constexpr Deposit decompose_double(int n, int k, double r) noexcept {
  Deposit d;
  if (!f64_is_finite(r)) {
    d.st = HpStatus::kConvertOverflow;
    return d;
  }
  if (r == 0.0) return d;  // covers -0.0: canonical zero addend

  const int be = f64_biased_exp(r);
  std::uint64_t m53 = f64_bits(r) & ((std::uint64_t{1} << 52) - 1);
  if (be != 0) m53 |= std::uint64_t{1} << 52;  // implicit leading bit
  int p = (be == 0 ? -1074 : be - 1075) + 64 * k;

  if (p < 0) {
    // Low bits fall below 2^(-64k): truncate toward zero.
    if (-p >= 53) {
      d.st = HpStatus::kInexact;  // entirely sub-lsb
      return d;
    }
    if ((m53 & ((std::uint64_t{1} << -p) - 1)) != 0) {
      d.st |= HpStatus::kInexact;
    }
    m53 >>= -p;
    p = 0;
    if (m53 == 0) return d;
  }
  d.msb = p + 63 - std::countl_zero(m53);
  if (d.msb >= 64 * n - 1) {
    d.st = HpStatus::kConvertOverflow;  // collides with or passes the sign bit
    return d;
  }
  d.has_bits = true;
  d.isneg = (f64_bits(r) >> 63) != 0;
  d.li = n - 1 - p / 64;
  const int off = p % 64;
  d.lo = m53 << off;
  // The straddle limb; zero when off == 0 (the two-step shift keeps the
  // shift count < 64 — branchless, no UB), and provably zero when li == 0
  // (msb < 64n-1 keeps the mantissa inside the top limb there).
  d.hi = (m53 >> 1) >> (63 - off);
  return d;
}

/// Fused double -> HP convert + add: the scatter-add fast path for the hot
/// reduction loop (`acc += x`). A double's 53-bit mantissa lands in at most
/// two adjacent limbs (plus a dying carry), so instead of materializing a
/// full n-limb temporary (from_double_impl) and paying an O(n) carry add
/// (add_impl), this places the mantissa directly into the affected limbs
/// and propagates the carry upward only until it dies. Negative summands
/// subtract the magnitude with borrow propagation — no full-width
/// two's-complement temporary is ever built.
///
/// Bit-exact contract (enforced by tests/test_scatter_add.cpp): for every
/// finite/non-finite double and every accumulator state, the resulting
/// limbs AND the returned status equal the reference two-step path
/// `from_double_impl/_exact(r, tmp) ; add_impl(a, tmp)`:
///   - kInexact     when bits below 2^(-64k) truncate toward zero,
///   - kConvertOverflow for non-finite or out-of-range |r| (a unchanged),
///   - kAddOverflow when the add leaves the range, by the same sign rule
///     as add_impl (same-sign operands, opposite-sign result).
/// Carry/borrow past the top limb wraps mod 2^(64n), exactly as add_impl
/// wraps — the Z/2^(64n) group structure the overflow flag reports on.
HPSUM_ALLOW_UNSIGNED_WRAP
[[nodiscard]] constexpr HpStatus scatter_add_double(util::Limb* a, int n,
                                                    int k, double r) noexcept {
  trace::count(trace::Counter::kScatterAddCalls);
  const Deposit d = decompose_double(n, k, r);
  if (!d.has_bits) {
    trace::count_status(d.st);  // no-op for the clean-zero case
    return d.st;
  }
  HpStatus st = d.st;
  const bool sa = (a[0] >> 63) != 0;  // accumulator sign before the add

  int chain = 0;  // limbs the carry/borrow propagated past the deposit pair
  if (!d.isneg) {
    bool carry = util::detail::addc(a[d.li], d.lo, false, &a[d.li]);
    if (d.li >= 1) {
      carry = util::detail::addc(a[d.li - 1], d.hi, carry, &a[d.li - 1]);
      for (int i = d.li - 2; i >= 0 && carry; --i, ++chain) {
        carry = ++a[i] == 0;
      }
    }
  } else {
    bool borrow = util::detail::subb(a[d.li], d.lo, false, &a[d.li]);
    if (d.li >= 1) {
      borrow = util::detail::subb(a[d.li - 1], d.hi, borrow, &a[d.li - 1]);
      for (int i = d.li - 2; i >= 0 && borrow; --i, ++chain) {
        borrow = a[i]-- == 0;
      }
    }
  }
  trace::count_carry_chain(chain);
  // add_impl's sign rule: the (virtual) addend is nonzero here, so its sign
  // is just the input's sign; compare against the result's sign.
  const bool sr = (a[0] >> 63) != 0;
  if (sa == d.isneg && sr != sa) st |= HpStatus::kAddOverflow;
  trace::count_status(st);
  return st;
}

}  // namespace detail

/// Public limb-kernel entry points. Everything below operates on raw
/// big-endian limb arrays (a[0] most significant) so both the compile-time
/// (HpFixed) and runtime (HpDyn) value types instantiate the same code.
namespace kernel {

__extension__ using U128 = unsigned __int128;

/// a += b over n limbs (paper Listing 2). Returns the sticky flags raised.
[[nodiscard]] constexpr HpStatus add(util::Limb* a, const util::Limb* b,
                                     int n) noexcept {
  return detail::add_impl(a, b, n);
}

/// a -= b over n limbs (negate-then-add; see detail::sub_impl).
[[nodiscard]] constexpr HpStatus sub(util::Limb* a, const util::Limb* b,
                                     int n) noexcept {
  return detail::sub_impl(a, b, n);
}

/// a = -a over n limbs; kAddOverflow for the unnegatable most-negative value.
[[nodiscard]] constexpr HpStatus negate(util::Limb* a, int n) noexcept {
  return detail::negate_impl(a, n);
}

/// Three-way two's-complement comparison: -1, 0, or +1.
[[nodiscard]] constexpr int compare(const util::Limb* a, const util::Limb* b,
                                    int n) noexcept {
  return detail::compare_impl(a, b, n);
}

/// a += r via the fused scatter deposit (see detail::scatter_add_double).
[[nodiscard]] constexpr HpStatus scatter_add(util::Limb* a, int n, int k,
                                             double r) noexcept {
  return detail::scatter_add_double(a, n, k, r);
}

/// Carry-propagating add of `b` into a shared n-limb accumulator expressed
/// over any atomic fetch-add primitive: `fetch_add(i, x)` must atomically
/// add `x` to limb i and return the limb's PREVIOUS value. The carry chain
/// lives entirely in the calling thread (the paper's §III.B.2 construction);
/// intermediate cross-limb states are torn, but limb-wise addition with
/// deferred carries is commutative/associative over Z/2^(64n), so once all
/// adders finish the result equals the sequential sum.
///
/// The top-limb update applies add_impl's sign rule to the observed
/// before/after values: in uncontended (or joined) runs they equal the
/// sequential adder's operands, so both paths raise the same sticky
/// kAddOverflow; under contention the observation is of some valid
/// interleaving — best-effort, never a dropped sequentially-detectable wrap.
/// HpAtomic's CAS-loop and fetch_add adders and the cudasim device adder are
/// the three instantiations.
template <class FetchAdd>
[[nodiscard]] inline HpStatus atomic_add(FetchAdd&& fetch_add,
                                         const util::Limb* b, int n) noexcept {
  HpStatus st = HpStatus::kOk;
  bool carry = false;
  for (int i = n - 1; i >= 0; --i) {
    const util::Limb x =
        detail::wrap_add(b[i], static_cast<util::Limb>(carry));
    const bool xwrap = carry && x == 0;  // b[i] was all-ones
    bool sumwrap = false;
    if (x != 0) {
      const util::Limb old = fetch_add(i, x);
      const util::Limb next = detail::wrap_add(old, x);
      sumwrap = next < old;  // unsigned wrap => carry into limb i-1
      if (i == 0) {
        const bool sa = (old >> 63) != 0;
        const bool sb = (b[0] >> 63) != 0;
        const bool sr = (next >> 63) != 0;
        if (sa == sb && sr != sa) st |= HpStatus::kAddOverflow;
      }
    }
    carry = xwrap || sumwrap;
  }
  // A carry out of limb 0 wraps the full 64n-bit ring exactly as the
  // sequential adder wraps; range departures are reported by the sign rule.
  trace::count_status(st);
  return st;
}

/// Conservative magnitude bound of the value in `a`: the smallest e with
/// |value| < 2^e (0 for zero; 64n for the most-negative value, whose
/// magnitude negate cannot represent — that forces the block path into its
/// scalar fallback, which is exactly right).
[[nodiscard]] constexpr int block_bound_exp(const util::Limb* a,
                                            int n) noexcept {
  util::Limb mag[kMaxLimbs] = {};
  for (int i = 0; i < n; ++i) mag[i] = a[i];
  const auto span = util::LimbSpan(mag, static_cast<std::size_t>(n));
  if (util::sign_bit(span)) util::negate_twos(span);
  return util::highest_set_bit(span) + 1;
}

/// Normalizes the deferred carry-save planes into `a`: folds each plane's
/// per-limb U128 partials into an n-limb value (lsb-first, carries ripple
/// once per BLOCK instead of once per summand) and applies the positive
/// plane as one add and the negative plane as one subtract. Recomputes
/// `bound_exp` from the flushed value and zeroes `pending`.
///
/// Plane layout: n+1 slots, with plane[j+1] accumulating deposits of
/// weight 2^(64*(n-1-j)) — i.e. slot j+1 mirrors limb j. Slot 0 is a pad
/// that lets block_add write the straddle word unconditionally (it only
/// ever receives provably-zero straddles of top-limb deposits).
///
/// Exactness: pending <= 64n-1 between flushes (block_add grows bound_exp
/// by >= 1 per deferred deposit), so each U128 slot holds < 2^75 — far
/// from wrapping — and each folded plane value is < 2^(64n-1) (the bound
/// invariant bounds the planes' totals separately, not just their
/// difference), so no carry is lost off the top of the fold.
constexpr void block_flush(util::Limb* a, U128* pos, U128* neg, int n,
                           int& bound_exp, int& pending) noexcept {
  if (pending == 0) return;
  trace::count(trace::Counter::kBlockNormalizes);
  trace::count(trace::Counter::kBlockFlushedDeposits,
               static_cast<std::uint64_t>(pending));
  trace::observe(trace::Hist::kBlockFlushDepth,
                 static_cast<std::uint64_t>(pending));
  util::Limb pv[kMaxLimbs] = {};
  util::Limb nv[kMaxLimbs] = {};
  U128 c = 0;
  for (int j = n - 1; j >= 0; --j) {
    c += pos[j + 1];
    pos[j + 1] = 0;
    pv[j] = static_cast<util::Limb>(c);
    c >>= 64;
  }
  pos[0] = 0;  // the pad only ever holds zero; keep the invariant visible
  c = 0;
  for (int j = n - 1; j >= 0; --j) {
    c += neg[j + 1];
    neg[j + 1] = 0;
    nv[j] = static_cast<util::Limb>(c);
    c >>= 64;
  }
  neg[0] = 0;
  const auto span = util::LimbSpan(a, static_cast<std::size_t>(n));
  // Carry/borrow out of the top wraps mod 2^(64n), exactly as the scalar
  // path wraps; under the bound invariant no prefix can actually wrap.
  // hplint: allow(discard-status) — ring-wrap is the scalar semantics
  util::add_into(span, util::ConstLimbSpan(pv, static_cast<std::size_t>(n)));
  // hplint: allow(discard-status) — ring-wrap is the scalar semantics
  util::sub_into(span, util::ConstLimbSpan(nv, static_cast<std::size_t>(n)));
  if constexpr (trace::enabled()) {
    // Live density indicator: nonzero limbs of the just-folded accumulator.
    // Runtime-only — the occupancy walk must not slow constexpr proofs.
    if (!std::is_constant_evaluated()) {
      std::uint64_t occ = 0;
      for (int j = 0; j < n; ++j) occ += a[j] != 0 ? 1u : 0u;
      trace::gauge_set(trace::Gauge::kAccLimbOccupancy, occ);
    }
  }
  pending = 0;
  bound_exp = block_bound_exp(a, n);
}

/// One block-path deposit of `r` into (a, pos, neg). Maintains the bound
/// invariant: |true running value| < 2^bound_exp, where "true value" means
/// a plus the deferred planes. Each deferred deposit updates
///
///   bound_exp' = max(bound_exp, msb(r)+1) + 1
///
/// (|x+y| < 2^(max+1)); while bound_exp' <= 64n-2 no prefix of the scalar
/// deposit sequence could leave the representable range, so the scalar path
/// would raise no kAddOverflow and the deferred status is exactly the
/// conversion-side flags — that is the status half of the bit-identity
/// proof. When the bound would reach the sign bit the planes are flushed
/// and the summand takes detail::scatter_add_double verbatim, making the
/// overflow corner bit-identical by construction (limbs and status).
[[nodiscard]] constexpr HpStatus block_add(util::Limb* a, U128* pos, U128* neg,
                                           int n, int k, int& bound_exp,
                                           int& pending, double r) noexcept {
  trace::count(trace::Counter::kBlockDeposits);
  const detail::Deposit d = detail::decompose_double(n, k, r);
  if (!d.has_bits) {
    trace::count_status(d.st);
    return d.st;
  }
  const int nb = (bound_exp > d.msb + 1 ? bound_exp : d.msb + 1) + 1;
  if (nb > 64 * n - 1) [[unlikely]] {
    block_flush(a, pos, neg, n, bound_exp, pending);
    trace::count(trace::Counter::kBlockScalarFallbacks);
    const HpStatus st = detail::scatter_add_double(a, n, k, r);
    bound_exp = block_bound_exp(a, n);
    return st;
  }
  bound_exp = nb;
  // Unconditional two-word deposit: slot li+1 is limb li, slot li is the
  // straddle limb li-1 — or the always-zero pad slot when li == 0.
  U128* plane = d.isneg ? neg : pos;
  plane[d.li + 1] += d.lo;
  plane[d.li] += d.hi;
  ++pending;
  trace::count_status(d.st);
  return d.st;
}

/// Deposits a whole span through block_add while keeping the bound/pending
/// state in locals, so the hot loop's invariant updates stay in registers
/// instead of bouncing through the accumulator object. Semantically (and
/// bit-for-bit, limbs and status) identical to calling block_add per
/// element.
///
/// When the build enables it (HPSUM_SIMD != OFF), runtime calls dispatch to
/// the vectorized batch deposit (core/hp_kernel_simd.hpp), which is fuzzed
/// bit-identical — limbs and sticky status — to the scalar loop below.
/// Constant evaluation always takes the scalar loop: the SIMD path is not
/// constexpr, and the is_constant_evaluated() guard keeps this facade
/// usable in both worlds.
[[nodiscard]] constexpr HpStatus block_accumulate(
    util::Limb* a, U128* pos, U128* neg, int n, int k, int& bound_exp,
    int& pending, std::span<const double> xs) noexcept {
#if HPSUM_SIMD_DISPATCH
  if (!std::is_constant_evaluated()) {
    return simd::accumulate(a, pos, neg, n, k, bound_exp, pending, xs);
  }
#endif
  HpStatus st = HpStatus::kOk;
  int bound = bound_exp;
  int pend = pending;
  for (const double r : xs) {
    st |= block_add(a, pos, neg, n, k, bound, pend, r);
  }
  bound_exp = bound;
  pending = pend;
  return st;
}

}  // namespace kernel

/// Carry-deferred block accumulator with a compile-time format — the block
/// fast path of kernel::block_add/block_flush as a value type. Deposits go
/// into per-limb U128 carry-save planes (positive and negative separately,
/// so no per-deposit two's-complement work); carries normalize once per
/// block. Bit-identical (limbs and sticky status) to feeding the same
/// doubles through HpFixed<N,K>::operator+=(double) in the same order —
/// and therefore in ANY order, by the HP method's order invariance.
///
/// Not an HpFixed (this header cannot see that type); HpFixed<N,K> offers
/// a draining constructor and accumulate(span) built on this.
template <int N, int K>
class BlockAccumulator {
  static_assert(N >= 1 && N <= kMaxLimbs, "limb count out of range");
  static_assert(K >= 0 && K <= N, "fractional limbs must satisfy 0 <= K <= N");

 public:
  /// Zero value.
  constexpr BlockAccumulator() noexcept = default;

  /// Starts from an existing value (e.g. an HpFixed's limbs) and its sticky
  /// status, so accumulate-into-nonzero matches the scalar path exactly.
  explicit constexpr BlockAccumulator(util::ConstLimbSpan start,
                                      HpStatus st = HpStatus::kOk) noexcept
      : status_(st) {
    for (int i = 0; i < N; ++i) limbs_[i] = start[static_cast<std::size_t>(i)];
    bound_exp_ = kernel::block_bound_exp(limbs_, N);
  }

  /// Deposits one double (deferred; carries normalize at the next flush).
  constexpr void add(double r) noexcept {
    status_ |= kernel::block_add(limbs_, pos_, neg_, N, K, bound_exp_,
                                 pending_, r);
  }

  /// Deposits a block of doubles (the register-resident span loop).
  constexpr void accumulate(std::span<const double> xs) noexcept {
    trace::count(trace::Counter::kBlockAccumulates);
    status_ |= kernel::block_accumulate(limbs_, pos_, neg_, N, K, bound_exp_,
                                        pending_, xs);
  }

  /// Folds any deferred deposits into the limb value. Idempotent.
  constexpr void normalize() noexcept {
    kernel::block_flush(limbs_, pos_, neg_, N, bound_exp_, pending_);
  }

  /// The normalized limbs (flushes first), big-endian.
  [[nodiscard]] constexpr util::ConstLimbSpan limbs() noexcept {
    normalize();
    return util::ConstLimbSpan(limbs_, static_cast<std::size_t>(N));
  }

  /// Sticky status accumulated so far (valid without flushing).
  [[nodiscard]] constexpr HpStatus status() const noexcept { return status_; }

 private:
  util::Limb limbs_[N] = {};
  // N+1 plane slots; see block_flush's layout comment (slot 0 is the pad,
  // slot j+1 mirrors limb j).
  kernel::U128 pos_[N + 1] = {};
  kernel::U128 neg_[N + 1] = {};
  HpStatus status_ = HpStatus::kOk;
  int bound_exp_ = 0;
  int pending_ = 0;
};

/// Runtime-config wrappers over the kernels above (hp_kernel.cpp). `a` /
/// `limbs` must have exactly the format's limb count.
HpStatus hp_add(util::LimbSpan a, util::ConstLimbSpan b) noexcept;
/// Fused `limbs += r` via detail::scatter_add_double — the hot-path
/// equivalent of hp_from_double into a temporary followed by hp_add,
/// bit-identical in limbs and status.
HpStatus hp_scatter_add(util::LimbSpan limbs, const HpConfig& cfg, double r) noexcept;

}  // namespace hpsum
