// hp_kernel_simd.cpp — the GENERIC lane decomposer (GCC vector extensions)
// and the runtime dispatch behind kernel::simd::accumulate. The compiler
// lowers the 4-wide u64 lanes to the baseline ISA (SSE2 on x86-64) or
// scalarizes them; either way the lane math is branch-free and identical
// to the AVX2 translation unit's. See hp_kernel_simd_deposit.hpp for the
// shared driver and the bit-identity argument.

#include "core/hp_kernel_simd.hpp"

#include <cstring>

#include "core/hp_kernel.hpp"
#include "core/hp_kernel_simd_deposit.hpp"

#ifndef HPSUM_SIMD_HAVE_AVX2
#define HPSUM_SIMD_HAVE_AVX2 0
#endif
#ifndef HPSUM_SIMD_FORCE_AVX2
#define HPSUM_SIMD_FORCE_AVX2 0
#endif

namespace hpsum::kernel::simd {

namespace detail {

#if HPSUM_SIMD_HAVE_AVX2
// Defined in hp_kernel_simd_avx2.cpp (compiled with -mavx2).
[[nodiscard]] HpStatus accumulate_avx2(util::Limb* a, U128* pos, U128* neg,
                                       int n, int k, int& bound_exp,
                                       int& pending,
                                       std::span<const double> xs) noexcept;
#endif

namespace {

typedef std::uint64_t u64x4 __attribute__((vector_size(32)));
typedef std::int64_t i64x4 __attribute__((vector_size(32)));

[[nodiscard]] constexpr u64x4 splat_u(std::uint64_t v) noexcept {
  return u64x4{v, v, v, v};
}
[[nodiscard]] constexpr i64x4 splat_s(std::int64_t v) noexcept {
  return i64x4{v, v, v, v};
}

/// Decomposes kWidth doubles with 4-wide vector-extension lanes: biased
/// exponent extract, in-window test, mantissa split into the lo/hi limb
/// words, branch-free sign split into the four plane streams. Slow lanes
/// produce garbage words (never consumed: the driver punts the whole
/// batch); `pmax` alone is exact for ALL lanes because p = be + pbias
/// stays within [-1075, 1036+64k] as a signed value.
struct GenericDecompose {
  void operator()(const double* x, const Window& w,
                  LaneBatch& b) const noexcept {
    std::int64_t pa[kWidth];
    u64x4 okacc = splat_u(~std::uint64_t{0});
    const i64x4 belo = splat_s(w.be_lo);
    const i64x4 behi = splat_s(w.be_hi);
    const i64x4 pbias = splat_s(w.pbias);
    const u64x4 mask52 = splat_u(kMask52);
    const u64x4 bit52 = splat_u(kBit52);
    const u64x4 c63 = splat_u(63);
    for (int h = 0; h < kWidth; h += 4) {
      u64x4 bits;
      std::memcpy(&bits, x + h, sizeof bits);
      const i64x4 be =
          reinterpret_cast<i64x4>((bits >> 52) & splat_u(0x7FF));
      const i64x4 ok = (be >= belo) & (be <= behi);
      const u64x4 m53 = (bits & mask52) | bit52;
      const i64x4 p = be + pbias;
      const u64x4 off = reinterpret_cast<u64x4>(p) & c63;
      const u64x4 lov = m53 << off;
      const u64x4 hiv = (m53 >> 1) >> (c63 - off);
      // All-ones for negative lanes (signed shift of the sign bit).
      const u64x4 negm =
          reinterpret_cast<u64x4>(reinterpret_cast<i64x4>(bits) >> 63);
      const u64x4 lopv = lov & ~negm;
      const u64x4 lonv = lov & negm;
      const u64x4 hipv = hiv & ~negm;
      const u64x4 hinv = hiv & negm;
      const u64x4 lqv = reinterpret_cast<u64x4>(p) >> 6;
      std::memcpy(b.lop + h, &lopv, sizeof lopv);
      std::memcpy(b.lon + h, &lonv, sizeof lonv);
      std::memcpy(b.hip + h, &hipv, sizeof hipv);
      std::memcpy(b.hin + h, &hinv, sizeof hinv);
      std::memcpy(b.lq + h, &lqv, sizeof lqv);
      std::memcpy(pa + h, &p, sizeof p);
      okacc &= reinterpret_cast<u64x4>(ok);
    }
    std::uint64_t okw[4];
    std::memcpy(okw, &okacc, sizeof okacc);
    b.all_fast = (okw[0] & okw[1] & okw[2] & okw[3]) == ~std::uint64_t{0};
    std::int64_t pm = pa[0];
    for (int j = 1; j < kWidth; ++j) pm = pa[j] > pm ? pa[j] : pm;
    b.pmax = static_cast<int>(pm);
    bool uniform = true;
    for (int j = 1; j < kWidth; ++j) uniform &= b.lq[j] == b.lq[0];
    b.uniform = uniform;
    if (b.all_fast && uniform) {
      // Four independent register chains; the driver consumes these as the
      // batch's plane deltas.
      U128 pl = 0;
      U128 nl = 0;
      U128 ph = 0;
      U128 nh = 0;
      for (int j = 0; j < kWidth; ++j) {
        pl += b.lop[j];
        nl += b.lon[j];
        ph += b.hip[j];
        nh += b.hin[j];
      }
      b.sum_lo[0] = pl;
      b.sum_lo[1] = nl;
      b.sum_hi[0] = ph;
      b.sum_hi[1] = nh;
    }
  }
};

[[nodiscard]] Level resolve_level() noexcept {
#if !HPSUM_SIMD_DISPATCH
  return Level::kOff;
#elif HPSUM_SIMD_HAVE_AVX2 && HPSUM_SIMD_FORCE_AVX2
  return Level::kAvx2;
#elif HPSUM_SIMD_HAVE_AVX2
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") ? Level::kAvx2 : Level::kGeneric;
#else
  return Level::kGeneric;
#endif
}

// Namespace-scope so the hot path reads a plain const, not a guarded magic
// static. Level::kOff is deliberately the zero enumerator: a call that
// races static initialization (another TU's dynamic init accumulating)
// reads 0 and takes the scalar loop — slow, never wrong.
const Level g_level = resolve_level();

}  // namespace
}  // namespace detail

Level active_level() noexcept { return detail::g_level; }

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kOff: return "off";
    case Level::kGeneric: return "generic";
    case Level::kAvx2: return "avx2";
  }
  return "unknown";
}

HpStatus accumulate(util::Limb* a, U128* pos, U128* neg, int n, int k,
                    int& bound_exp, int& pending,
                    std::span<const double> xs) noexcept {
#if HPSUM_SIMD_HAVE_AVX2
  if (detail::g_level == Level::kAvx2) {
    return detail::accumulate_avx2(a, pos, neg, n, k, bound_exp, pending, xs);
  }
#endif
  if (detail::g_level == Level::kGeneric) {
    return detail::accumulate_batches(a, pos, neg, n, k, bound_exp, pending,
                                      xs, detail::GenericDecompose{});
  }
  // kOff (or pre-init): the plain scalar loop, so direct callers — the
  // differential tests — stay valid in every configuration.
  HpStatus st = HpStatus::kOk;
  int bound = bound_exp;
  int pend = pending;
  for (const double r : xs) {
    st |= kernel::block_add(a, pos, neg, n, k, bound, pend, r);
  }
  bound_exp = bound;
  pending = pend;
  return st;
}

}  // namespace hpsum::kernel::simd
