#include "trace/pulse.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace hpsum::trace::pulse {

namespace {

/// Sampler state. Function-local static (like the trace registry) so the
/// disarm-at-exit path never races static destruction order.
struct Sampler {
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  std::thread worker;
  std::FILE* jsonl = nullptr;
  Config cfg;
  std::uint64_t epoch_ms = 0;
  std::chrono::steady_clock::time_point t0;
  Snapshot prev;
  std::atomic<std::uint64_t> seq{0};
  std::atomic<bool> armed{false};
};

Sampler& sampler() {
  static Sampler s;
  return s;
}

std::uint64_t now_epoch_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Catalog name -> Prometheus metric name: "hpsum_" prefix, '.' -> '_'.
std::string prom_name(std::string_view dotted) {
  std::string out = "hpsum_";
  for (const char c : dotted) out += c == '.' ? '_' : c;
  return out;
}

/// Atomic rewrite: write tmp, rename over the target so a scraper never
/// reads a half-written exposition.
bool write_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs(body.c_str(), f) >= 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/// One sampler tick: snapshot, diff, append the JSONL line, rewrite the
/// Prometheus exposition. Caller holds no locks the probes need.
void tick(Sampler& s) {
  const Snapshot cur = snapshot();
  const Snapshot delta = cur.delta_since(s.prev);
  s.prev = cur;
  const auto ts_ms =
      s.epoch_ms +
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - s.t0)
              .count());
  const std::uint64_t n = s.seq.fetch_add(1, std::memory_order_relaxed) + 1;
  std::string line = jsonl_tick(delta, ts_ms, n);
  line += '\n';
  std::fputs(line.c_str(), s.jsonl);
  std::fflush(s.jsonl);
  if (!s.cfg.prom_path.empty()) {
    write_atomic(s.cfg.prom_path, to_prometheus(cur));
  }
}

void run(Sampler& s) {
  std::unique_lock<std::mutex> lock(s.mu);
  while (!s.stop) {
    s.cv.wait_for(lock, s.cfg.interval, [&s] { return s.stop; });
    if (s.stop) break;
    tick(s);
  }
  // Final tick: a run shorter than one interval still exports its end
  // state, and every stream ends with the totals that actually happened.
  tick(s);
}

}  // namespace

bool armed() noexcept { return sampler().armed.load(std::memory_order_relaxed); }

std::uint64_t ticks() noexcept {
  return sampler().seq.load(std::memory_order_relaxed);
}

bool arm(const Config& cfg) {
  Sampler& s = sampler();
  const std::lock_guard<std::mutex> lock(s.mu);
  if (s.armed.load(std::memory_order_relaxed)) return false;
  std::FILE* f = std::fopen(cfg.jsonl_path.c_str(), "w");
  if (f == nullptr) return false;
  const std::uint64_t epoch = now_epoch_ms();
  std::string header = jsonl_header(cfg, epoch);
  header += '\n';
  std::fputs(header.c_str(), f);
  std::fflush(f);
  if (!enabled()) {
    // Compiled-out build: the header (enabled:false) is the whole stream.
    std::fclose(f);
    return false;
  }
  s.jsonl = f;
  s.cfg = cfg;
  s.epoch_ms = epoch;
  s.t0 = std::chrono::steady_clock::now();
  s.prev = Snapshot{};
  s.seq.store(0, std::memory_order_relaxed);
  s.stop = false;
  s.worker = std::thread([&s] { run(s); });
  s.armed.store(true, std::memory_order_relaxed);
  return true;
}

bool arm_from_env() {
  const char* path = std::getenv("HPSUM_PULSE");
  if (path == nullptr || path[0] == '\0' ||
      (path[0] == '0' && path[1] == '\0')) {
    return false;
  }
  Config cfg;
  if (!(path[0] == '1' && path[1] == '\0')) cfg.jsonl_path = path;
  if (const char* ms = std::getenv("HPSUM_PULSE_INTERVAL_MS")) {
    const long v = std::strtol(ms, nullptr, 10);
    if (v > 0) cfg.interval = std::chrono::milliseconds(v);
  }
  if (const char* prom = std::getenv("HPSUM_PULSE_PROM")) {
    if (prom[0] != '\0') cfg.prom_path = prom;
  }
  return arm(cfg);
}

void disarm() noexcept {
  Sampler& s = sampler();
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    if (!s.armed.load(std::memory_order_relaxed)) return;
    s.stop = true;
  }
  s.cv.notify_all();
  if (s.worker.joinable()) s.worker.join();
  const std::lock_guard<std::mutex> lock(s.mu);
  if (s.jsonl != nullptr) std::fclose(s.jsonl);
  s.jsonl = nullptr;
  s.armed.store(false, std::memory_order_relaxed);
}

std::string jsonl_header(const Config& cfg, std::uint64_t epoch_ms) {
  std::string out = "{\"hpsum_pulse\": 1, \"enabled\": ";
  out += enabled() ? "true" : "false";
  out += ", \"interval_ms\": ";
  out += std::to_string(cfg.interval.count());
  out += ", \"epoch_ms\": ";
  out += std::to_string(epoch_ms);
  out += "}";
  return out;
}

std::string jsonl_tick(const Snapshot& delta, std::uint64_t ts_ms,
                       std::uint64_t seq) {
  std::string out = "{\"seq\": ";
  out += std::to_string(seq);
  out += ", \"ts_ms\": ";
  out += std::to_string(ts_ms);
  out += ", \"counters\": {";
  bool first = true;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (delta.values[i] == 0) continue;  // deltas: nonzero entries only
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += counter_name(static_cast<Counter>(i));
    out += "\": ";
    out += std::to_string(delta.values[i]);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (std::size_t h = 0; h < kHistCount; ++h) {
    const auto& hd = delta.hists[h];
    if (hd.count == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += hist_name(static_cast<Hist>(h));
    out += "\": {\"count\": ";
    out += std::to_string(hd.count);
    out += ", \"sum\": ";
    out += std::to_string(hd.sum);
    out += ", \"buckets\": {";
    bool bfirst = true;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (hd.buckets[b] == 0) continue;
      if (!bfirst) out += ", ";
      bfirst = false;
      out += '"';
      out += std::to_string(b);
      out += "\": ";
      out += std::to_string(hd.buckets[b]);
    }
    out += "}}";
  }
  out += "}, \"gauges\": {";
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    if (g != 0) out += ", ";
    out += '"';
    out += gauge_name(static_cast<Gauge>(g));
    out += "\": ";
    out += std::to_string(delta.gauges[g]);
  }
  out += "}}";
  return out;
}

std::string to_prometheus(const Snapshot& total) {
  std::string out;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const std::string name = prom_name(counter_name(static_cast<Counter>(i)));
    out += "# TYPE " + name + " counter\n";
    out += name + "_total " + std::to_string(total.values[i]) + "\n";
  }
  for (std::size_t h = 0; h < kHistCount; ++h) {
    const auto& hd = total.hists[h];
    const std::string name = prom_name(hist_name(static_cast<Hist>(h)));
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      cum += hd.buckets[b];
      const std::string le = b + 1 < kHistBuckets
                                 ? std::to_string(hist_bucket_le(b))
                                 : std::string("+Inf");
      out += name + "_bucket{le=\"" + le + "\"} " + std::to_string(cum) + "\n";
    }
    out += name + "_sum " + std::to_string(hd.sum) + "\n";
    out += name + "_count " + std::to_string(hd.count) + "\n";
  }
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    const std::string name = prom_name(gauge_name(static_cast<Gauge>(g)));
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(total.gauges[g]) + "\n";
  }
  return out;
}

}  // namespace hpsum::trace::pulse
