#include "trace/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <vector>

namespace hpsum::trace {

namespace {

/// Process-wide shard registry. Function-local static so it outlives the
/// main thread's thread_local shard (TLS destructors run before statics').
struct Registry {
  std::mutex mu;
  std::vector<detail::Shard*> live;
  /// Totals folded in from threads that have exited.
  std::array<std::uint64_t, kCounterCount> retired{};
  std::array<std::uint64_t, kHistCount * kHistBuckets> retired_buckets{};
  std::array<std::uint64_t, kHistCount> retired_hist_count{};
  std::array<std::uint64_t, kHistCount> retired_hist_sum{};
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Process-global gauge slots. Last-write-wins: no shard, no retirement —
/// a gauge is a level, not a total, so thread exit must not change it.
std::array<std::atomic<std::uint64_t>, kGaugeCount> g_gauges{};

/// Sorted name->enum table shared by the three from_name lookups. Derived
/// from the corresponding name function so the two directions cannot
/// desynchronize; sorted once at first use, then every resolve is a
/// binary search (the pulse sampler and health rules look names up every
/// tick, so O(catalog) scans are out).
template <typename Enum, std::size_t N, std::string_view (*NameFn)(Enum)>
std::optional<Enum> sorted_lookup(std::string_view name) noexcept {
  struct Entry {
    std::string_view name;
    Enum value;
  };
  static const std::array<Entry, N> table = [] {
    std::array<Entry, N> t{};
    for (std::size_t i = 0; i < N; ++i) {
      const auto e = static_cast<Enum>(i);
      t[i] = Entry{NameFn(e), e};
    }
    std::sort(t.begin(), t.end(),
              [](const Entry& a, const Entry& b) { return a.name < b.name; });
    return t;
  }();
  const auto it = std::lower_bound(
      table.begin(), table.end(), name,
      [](const Entry& e, std::string_view n) { return e.name < n; });
  if (it == table.end() || it->name != name) return std::nullopt;
  return it->value;
}

}  // namespace

namespace detail {

void register_shard(Shard* s) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.live.push_back(s);
}

void retire_shard(Shard* s) noexcept {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    r.retired[i] += s->values[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kHistCount * kHistBuckets; ++i) {
    r.retired_buckets[i] += s->buckets[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kHistCount; ++i) {
    r.retired_hist_count[i] += s->hist_count[i].load(std::memory_order_relaxed);
    r.retired_hist_sum[i] += s->hist_sum[i].load(std::memory_order_relaxed);
  }
  std::erase(r.live, s);
}

void gauge_store(Gauge g, std::uint64_t v) noexcept {
  g_gauges[static_cast<std::size_t>(g)].store(v, std::memory_order_relaxed);
}

}  // namespace detail

std::string_view counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kScatterAddCalls: return "core.scatter_add.calls";
    case Counter::kReferenceAddCalls: return "core.reference_add.calls";
    case Counter::kBlockAccumulates: return "core.block.accumulates";
    case Counter::kBlockDeposits: return "core.block.deposits";
    case Counter::kBlockNormalizes: return "core.block.normalizes";
    case Counter::kBlockFlushedDeposits: return "core.block.flushed_deposits";
    case Counter::kBlockScalarFallbacks: return "core.block.scalar_fallbacks";
    case Counter::kBlockSimdBatches: return "core.block.simd_batches";
    case Counter::kBlockSimdDeposits: return "core.block.simd_deposits";
    case Counter::kBlockSimdPunts: return "core.block.simd_punts";
    case Counter::kStatusConvertOverflow: return "core.status_raise.convert_overflow";
    case Counter::kStatusAddOverflow: return "core.status_raise.add_overflow";
    case Counter::kStatusToDoubleOverflow: return "core.status_raise.to_double_overflow";
    case Counter::kStatusInexact: return "core.status_raise.inexact";
    case Counter::kStatusToDoubleInexact: return "core.status_raise.to_double_inexact";
    case Counter::kStatusInvalidOp: return "core.status_raise.invalid_op";
    case Counter::kAtomicCasAdds: return "atomic.cas.adds";
    case Counter::kAtomicCasRetries: return "atomic.cas.retries";
    case Counter::kAtomicFetchAddAdds: return "atomic.fetch_add.adds";
    case Counter::kAdaptiveGrowInt: return "adaptive.grow_int";
    case Counter::kAdaptiveGrowFrac: return "adaptive.grow_frac";
    case Counter::kAdaptiveRecoverOverflow: return "adaptive.recover_add_overflow";
    case Counter::kBackendReductions: return "backends.reductions";
    case Counter::kBackendBusyNs: return "backends.busy_ns";
    case Counter::kBackendMergeNs: return "backends.merge_ns";
    case Counter::kMpisimMessages: return "mpisim.messages";
    case Counter::kMpisimBytesSent: return "mpisim.bytes_sent";
    case Counter::kMpisimReductions: return "mpisim.reductions";
    case Counter::kMpisimWireRawBytes: return "mpisim.wire.raw_bytes";
    case Counter::kMpisimWireEncodedBytes: return "mpisim.wire.encoded_bytes";
    case Counter::kMpisimAlgoLinear: return "mpisim.algo.linear";
    case Counter::kMpisimAlgoBinomialTree: return "mpisim.algo.binomial_tree";
    case Counter::kMpisimAlgoRecDoubling:
      return "mpisim.algo.recursive_doubling";
    case Counter::kMpisimAlgoRecHalving:
      return "mpisim.algo.recursive_halving";
    case Counter::kCudasimLaunches: return "cudasim.launches";
    case Counter::kCudasimCasRetries: return "cudasim.cas_retries";
    case Counter::kCudasimBytesH2D: return "cudasim.bytes_h2d";
    case Counter::kCudasimBytesD2H: return "cudasim.bytes_d2h";
    case Counter::kCudasimBusyNs: return "cudasim.busy_ns";
    case Counter::kPhisimOffloads: return "phisim.offloads";
    case Counter::kPhisimBytesUploaded: return "phisim.bytes_uploaded";
    case Counter::kPhisimBusyNs: return "phisim.busy_ns";
    case Counter::kEngineSnapshots: return "engine.snapshot.count";
    case Counter::kEngineSnapshotRetries: return "engine.snapshot.retries";
    case Counter::kEngineShardsRegistered: return "engine.shard.registered";
    case Counter::kEngineShardsRetired: return "engine.shard.retired";
    case Counter::kFlightDropped: return "trace.flight.dropped";
    case Counter::kCount: break;
  }
  return "unknown";
}

std::string_view hist_name(Hist h) noexcept {
  switch (h) {
    case Hist::kScatterCarryChain: return "core.scatter_add.carry_chain";
    case Hist::kBlockFlushDepth: return "core.block.flush_depth";
    case Hist::kReduceLatencyNs: return "core.reduce.latency_ns";
    case Hist::kAtomicCasRetriesPerAdd: return "atomic.cas.retries_per_add";
    case Hist::kMpisimMsgBytes: return "mpisim.msg_bytes";
    case Hist::kEngineSnapshotLatencyUs: return "engine.snapshot.latency_us";
    case Hist::kCount: break;
  }
  return "unknown";
}

std::string_view gauge_name(Gauge g) noexcept {
  switch (g) {
    case Gauge::kAccLimbOccupancy: return "core.block.limb_occupancy";
    case Gauge::kAdaptiveCurN: return "adaptive.cur_n";
    case Gauge::kAdaptiveCurK: return "adaptive.cur_k";
    case Gauge::kCount: break;
  }
  return "unknown";
}

std::optional<Counter> counter_from_name(std::string_view name) noexcept {
  return sorted_lookup<Counter, kCounterCount, counter_name>(name);
}

std::optional<Hist> hist_from_name(std::string_view name) noexcept {
  return sorted_lookup<Hist, kHistCount, hist_name>(name);
}

std::optional<Gauge> gauge_from_name(std::string_view name) noexcept {
  return sorted_lookup<Gauge, kGaugeCount, gauge_name>(name);
}

Snapshot snapshot() {
  Snapshot out;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  out.values = r.retired;
  for (std::size_t h = 0; h < kHistCount; ++h) {
    auto& hd = out.hists[h];
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      hd.buckets[b] = r.retired_buckets[h * kHistBuckets + b];
    }
    hd.count = r.retired_hist_count[h];
    hd.sum = r.retired_hist_sum[h];
  }
  for (const detail::Shard* s : r.live) {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      out.values[i] += s->values[i].load(std::memory_order_relaxed);
    }
    for (std::size_t h = 0; h < kHistCount; ++h) {
      auto& hd = out.hists[h];
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        hd.buckets[b] +=
            s->buckets[h * kHistBuckets + b].load(std::memory_order_relaxed);
      }
      hd.count += s->hist_count[h].load(std::memory_order_relaxed);
      hd.sum += s->hist_sum[h].load(std::memory_order_relaxed);
    }
  }
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    out.gauges[g] = g_gauges[g].load(std::memory_order_relaxed);
  }
  return out;
}

void reset() noexcept {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.retired.fill(0);
  r.retired_buckets.fill(0);
  r.retired_hist_count.fill(0);
  r.retired_hist_sum.fill(0);
  for (detail::Shard* s : r.live) {
    for (auto& v : s->values) v.store(0, std::memory_order_relaxed);
    for (auto& v : s->buckets) v.store(0, std::memory_order_relaxed);
    for (auto& v : s->hist_count) v.store(0, std::memory_order_relaxed);
    for (auto& v : s->hist_sum) v.store(0, std::memory_order_relaxed);
  }
  for (auto& g : g_gauges) g.store(0, std::memory_order_relaxed);
}

Snapshot Snapshot::delta_since(const Snapshot& earlier) const noexcept {
  const auto sat_sub = [](std::uint64_t a, std::uint64_t b) {
    return a >= b ? a - b : 0;
  };
  Snapshot out;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out.values[i] = sat_sub(values[i], earlier.values[i]);
  }
  for (std::size_t h = 0; h < kHistCount; ++h) {
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      out.hists[h].buckets[b] =
          sat_sub(hists[h].buckets[b], earlier.hists[h].buckets[b]);
    }
    out.hists[h].count = sat_sub(hists[h].count, earlier.hists[h].count);
    out.hists[h].sum = sat_sub(hists[h].sum, earlier.hists[h].sum);
  }
  // Gauges are levels: a delta stream still wants the current reading.
  out.gauges = gauges;
  return out;
}

std::string Snapshot::to_json() const {
  std::string out = "{\n  \"hpsum_trace\": 2,\n  \"enabled\": ";
  out += enabled() ? "true" : "false";
  out += ",\n  \"counters\": {\n";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out += "    \"";
    out += counter_name(static_cast<Counter>(i));
    out += "\": ";
    out += std::to_string(values[i]);
    out += i + 1 < kCounterCount ? ",\n" : "\n";
  }
  out += "  },\n  \"histograms\": {\n";
  for (std::size_t h = 0; h < kHistCount; ++h) {
    const auto& hd = hists[h];
    out += "    \"";
    out += hist_name(static_cast<Hist>(h));
    out += "\": {\"count\": ";
    out += std::to_string(hd.count);
    out += ", \"sum\": ";
    out += std::to_string(hd.sum);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      out += std::to_string(hd.buckets[b]);
      if (b + 1 < kHistBuckets) out += ", ";
    }
    out += "]}";
    out += h + 1 < kHistCount ? ",\n" : "\n";
  }
  out += "  },\n  \"gauges\": {\n";
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    out += "    \"";
    out += gauge_name(static_cast<Gauge>(g));
    out += "\": ";
    out += std::to_string(gauges[g]);
    out += g + 1 < kGaugeCount ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  return out;
}

std::string Snapshot::to_csv() const {
  std::string out = "counter,value\n";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out += counter_name(static_cast<Counter>(i));
    out += ',';
    out += std::to_string(values[i]);
    out += '\n';
  }
  return out;
}

bool write_json(const std::string& path) {
  const std::string json = snapshot().to_json();
  if (path.empty() || path == "-") {
    std::fputs(json.c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs(json.c_str(), f);
  std::fclose(f);
  return true;
}

}  // namespace hpsum::trace
