#include "trace/trace.hpp"

#include <cstdio>
#include <mutex>
#include <vector>

namespace hpsum::trace {

namespace {

/// Process-wide shard registry. Function-local static so it outlives the
/// main thread's thread_local shard (TLS destructors run before statics').
struct Registry {
  std::mutex mu;
  std::vector<detail::Shard*> live;
  /// Totals folded in from threads that have exited.
  std::array<std::uint64_t, kCounterCount> retired{};
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

namespace detail {

void register_shard(Shard* s) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.live.push_back(s);
}

void retire_shard(Shard* s) noexcept {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    r.retired[i] += s->values[i].load(std::memory_order_relaxed);
  }
  std::erase(r.live, s);
}

}  // namespace detail

std::string_view counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kScatterAddCalls: return "core.scatter_add.calls";
    case Counter::kScatterCarryChain1: return "core.scatter_add.carry_chain_len1";
    case Counter::kScatterCarryChain2: return "core.scatter_add.carry_chain_len2";
    case Counter::kScatterCarryChain3: return "core.scatter_add.carry_chain_len3";
    case Counter::kScatterCarryChain4Plus: return "core.scatter_add.carry_chain_len4plus";
    case Counter::kReferenceAddCalls: return "core.reference_add.calls";
    case Counter::kBlockAccumulates: return "core.block.accumulates";
    case Counter::kBlockDeposits: return "core.block.deposits";
    case Counter::kBlockNormalizes: return "core.block.normalizes";
    case Counter::kBlockFlushedDeposits: return "core.block.flushed_deposits";
    case Counter::kBlockScalarFallbacks: return "core.block.scalar_fallbacks";
    case Counter::kBlockSimdBatches: return "core.block.simd_batches";
    case Counter::kBlockSimdDeposits: return "core.block.simd_deposits";
    case Counter::kBlockSimdPunts: return "core.block.simd_punts";
    case Counter::kStatusConvertOverflow: return "core.status_raise.convert_overflow";
    case Counter::kStatusAddOverflow: return "core.status_raise.add_overflow";
    case Counter::kStatusToDoubleOverflow: return "core.status_raise.to_double_overflow";
    case Counter::kStatusInexact: return "core.status_raise.inexact";
    case Counter::kStatusToDoubleInexact: return "core.status_raise.to_double_inexact";
    case Counter::kStatusInvalidOp: return "core.status_raise.invalid_op";
    case Counter::kAtomicCasAdds: return "atomic.cas.adds";
    case Counter::kAtomicCasRetries: return "atomic.cas.retries";
    case Counter::kAtomicFetchAddAdds: return "atomic.fetch_add.adds";
    case Counter::kAdaptiveGrowInt: return "adaptive.grow_int";
    case Counter::kAdaptiveGrowFrac: return "adaptive.grow_frac";
    case Counter::kAdaptiveRecoverOverflow: return "adaptive.recover_add_overflow";
    case Counter::kBackendReductions: return "backends.reductions";
    case Counter::kBackendBusyNs: return "backends.busy_ns";
    case Counter::kBackendMergeNs: return "backends.merge_ns";
    case Counter::kMpisimMessages: return "mpisim.messages";
    case Counter::kMpisimBytesSent: return "mpisim.bytes_sent";
    case Counter::kMpisimReductions: return "mpisim.reductions";
    case Counter::kMpisimWireRawBytes: return "mpisim.wire.raw_bytes";
    case Counter::kMpisimWireEncodedBytes: return "mpisim.wire.encoded_bytes";
    case Counter::kMpisimAlgoLinear: return "mpisim.algo.linear";
    case Counter::kMpisimAlgoBinomialTree: return "mpisim.algo.binomial_tree";
    case Counter::kMpisimAlgoRecDoubling:
      return "mpisim.algo.recursive_doubling";
    case Counter::kMpisimAlgoRecHalving:
      return "mpisim.algo.recursive_halving";
    case Counter::kCudasimLaunches: return "cudasim.launches";
    case Counter::kCudasimCasRetries: return "cudasim.cas_retries";
    case Counter::kCudasimBytesH2D: return "cudasim.bytes_h2d";
    case Counter::kCudasimBytesD2H: return "cudasim.bytes_d2h";
    case Counter::kCudasimBusyNs: return "cudasim.busy_ns";
    case Counter::kPhisimOffloads: return "phisim.offloads";
    case Counter::kPhisimBytesUploaded: return "phisim.bytes_uploaded";
    case Counter::kPhisimBusyNs: return "phisim.busy_ns";
    case Counter::kFlightDropped: return "trace.flight.dropped";
    case Counter::kCount: break;
  }
  return "unknown";
}

std::optional<Counter> counter_from_name(std::string_view name) noexcept {
  // Linear scan over the catalog: 38 string_view compares, called from
  // tools/tests, never a hot path. Staying derived from counter_name keeps
  // the two directions impossible to desynchronize.
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    if (counter_name(c) == name) return c;
  }
  return std::nullopt;
}

Snapshot snapshot() {
  Snapshot out;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  out.values = r.retired;
  for (const detail::Shard* s : r.live) {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      out.values[i] += s->values[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void reset() noexcept {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.retired.fill(0);
  for (detail::Shard* s : r.live) {
    for (auto& v : s->values) v.store(0, std::memory_order_relaxed);
  }
}

Snapshot Snapshot::delta_since(const Snapshot& earlier) const noexcept {
  Snapshot out;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out.values[i] =
        values[i] >= earlier.values[i] ? values[i] - earlier.values[i] : 0;
  }
  return out;
}

std::string Snapshot::to_json() const {
  std::string out = "{\n  \"hpsum_trace\": 1,\n  \"enabled\": ";
  out += enabled() ? "true" : "false";
  out += ",\n  \"counters\": {\n";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out += "    \"";
    out += counter_name(static_cast<Counter>(i));
    out += "\": ";
    out += std::to_string(values[i]);
    out += i + 1 < kCounterCount ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  return out;
}

std::string Snapshot::to_csv() const {
  std::string out = "counter,value\n";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out += counter_name(static_cast<Counter>(i));
    out += ',';
    out += std::to_string(values[i]);
    out += '\n';
  }
  return out;
}

bool write_json(const std::string& path) {
  const std::string json = snapshot().to_json();
  if (path.empty() || path == "-") {
    std::fputs(json.c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs(json.c_str(), f);
  std::fclose(f);
  return true;
}

}  // namespace hpsum::trace
