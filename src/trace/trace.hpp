// hptrace — near-zero-overhead runtime telemetry for the HP contract.
//
// The library's behavioral contract (bit-exact, order-invariant sums with
// sticky status) is invisible at runtime without counters: CAS retry
// pressure in HpAtomic, carry-chain lengths in the scatter-add fast path,
// HpAdaptive growth events, and per-backend bytes/busy time all decide
// whether a deployment is healthy, yet none of them used to be observable
// outside ad-hoc bench printouts. This layer is the one place such numbers
// flow through (tools/hplint rule L5 flags raw printf/timer telemetry in
// src/core, src/mpisim, and src/audit for exactly that reason).
//
// Three metric kinds share one fixed catalog-per-kind design:
//   - Counter: named monotonic counters. Span timers are counters holding
//     accumulated nanoseconds (ScopedTimer).
//   - Hist: log2-bucket histograms (kHistBuckets buckets; bucket 0 holds
//     value 0, bucket i>=1 holds values with bit_width == i, the last
//     bucket absorbs the tail) plus an exact count and sum per histogram —
//     distributions, not just totals, for carry-chain lengths, reduce_hp
//     latency, CAS retries per add, message bytes, and flush depth.
//   - Gauge: last-write-wins current values (live limb occupancy,
//     HpAdaptive's current (n,k)) held in process-global atomic slots; a
//     gauge read is tear-free because it is one 64-bit relaxed load.
//
// Design:
//   - Counter/histogram writes go to a thread-local shard: a single-writer
//     relaxed-atomic slot per counter/bucket, so the hot-path increment
//     compiles to a plain load/add/store of the owning thread's cache
//     line — no lock prefix, no contention, and tear-free for concurrent
//     readers.
//   - snapshot() aggregates live shards plus the retired totals of exited
//     threads under a registry mutex; successive snapshots are monotone
//     per counter AND per histogram bucket.
//   - Compile-time kill switch: building with -DHPSUM_TRACE_ENABLED=0
//     (CMake: -DHPSUM_TRACE=OFF) turns every probe into a no-op expression
//     with zero code, while the snapshot/export API stays linkable.
//   - Probes are callable from constexpr kernels: count() / observe() /
//     gauge_set() are constexpr and only touch storage when not in
//     constant evaluation, so the static_assert proofs in
//     tests/test_constexpr_proofs.cpp still hold.
//
// The background sampler/exporter over these snapshots (JSONL deltas +
// Prometheus exposition) is src/trace/pulse.hpp; the derived health-rule
// layer is src/audit/health.hpp. docs/OBSERVABILITY.md has the catalogs,
// export schemas, and measured overhead numbers.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>

#include "core/hp_status.hpp"  // header-only; no link dependency

#ifndef HPSUM_TRACE_ENABLED
#define HPSUM_TRACE_ENABLED 1
#endif

namespace hpsum::trace {

/// The counter catalog. Stable names (see counter_name) appear in JSON/CSV
/// exports; docs/OBSERVABILITY.md documents each one.
enum class Counter : std::uint16_t {
  // core — scatter-add fast path vs reference path. (Carry-chain lengths
  // graduated from four ad-hoc counters to the Hist::kScatterCarryChain
  // histogram below.)
  kScatterAddCalls = 0,   ///< operator+=(double) deposits (fast path)
  kReferenceAddCalls,     ///< add_double_reference convert+add pairs
  // core — the carry-deferred block fast path (kernel::block_add/flush).
  kBlockAccumulates,      ///< accumulate(span) block-API entries
  kBlockDeposits,         ///< doubles offered to the block path
  kBlockNormalizes,       ///< carry-save plane flushes (block_flush)
  kBlockFlushedDeposits,  ///< deferred deposits folded per flush (depth sum)
  kBlockScalarFallbacks,  ///< bound-violation deposits sent down the scalar path
  // core — the vectorized (SIMD) batch-deposit path over the block planes.
  kBlockSimdBatches,      ///< full-width batches deposited in vector lanes
  kBlockSimdDeposits,     ///< doubles deposited by the vector path
  kBlockSimdPunts,        ///< full-width batches punted to the scalar deposit
  // core — sticky status raise counts, one counter per HpStatus bit.
  kStatusConvertOverflow,
  kStatusAddOverflow,
  kStatusToDoubleOverflow,
  kStatusInexact,
  kStatusToDoubleInexact,
  kStatusInvalidOp,
  // HpAtomic — contention and adder-flavor traffic.
  kAtomicCasAdds,         ///< add() calls (CAS-loop adder)
  kAtomicCasRetries,      ///< failed compare_exchange attempts
  kAtomicFetchAddAdds,    ///< add_fetch_add() calls (ablation adder)
  // HpAdaptive — growth events.
  kAdaptiveGrowInt,
  kAdaptiveGrowFrac,
  kAdaptiveRecoverOverflow,
  // backends — span timers routed through the registry (nanoseconds).
  kBackendReductions,     ///< run_threads/run_openmp invocations
  kBackendBusyNs,         ///< summed per-PE busy time
  kBackendMergeNs,        ///< master-thread partial combines
  // mpisim — message traffic.
  kMpisimMessages,
  kMpisimBytesSent,
  kMpisimReductions,
  // mpisim — collective payload bytes before/after the optional Op wire
  // codec (equal when no codec is attached), and per-topology reduction
  // counts.
  kMpisimWireRawBytes,
  kMpisimWireEncodedBytes,
  kMpisimAlgoLinear,
  kMpisimAlgoBinomialTree,
  kMpisimAlgoRecDoubling,
  kMpisimAlgoRecHalving,
  // cudasim — launches, contention, PCIe traffic.
  kCudasimLaunches,
  kCudasimCasRetries,
  kCudasimBytesH2D,
  kCudasimBytesD2H,
  kCudasimBusyNs,
  // phisim — offload traffic.
  kPhisimOffloads,
  kPhisimBytesUploaded,
  kPhisimBusyNs,
  // engine — sharded deposit sinks (src/engine ShardSet).
  kEngineSnapshots,        ///< snapshot()/drain()/checkpoint() merge passes
  kEngineSnapshotRetries,  ///< torn-shard seqlock re-reads during merges
  kEngineShardsRegistered, ///< shard slots created (fixed lanes + handles)
  kEngineShardsRetired,    ///< dynamic shards folded into the retired total
  // trace — the telemetry layer watching itself.
  kFlightDropped,         ///< flight-recorder records overwritten (ring wrap)
  kCount  ///< sentinel, keep last
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// The histogram catalog: fixed log2-bucket distributions. Each histogram
/// also tracks an exact observation count and value sum (so means and
/// Prometheus `_sum`/`_count` series need no bucket arithmetic).
enum class Hist : std::uint16_t {
  kScatterCarryChain = 0,   ///< limbs the carry/borrow propagated past the
                            ///  deposit pair (0 = died in place); one
                            ///  observation per deposit that touched limbs
  kBlockFlushDepth,         ///< deferred deposits folded per block_flush
  kReduceLatencyNs,         ///< wall nanoseconds per reduce_hp call
  kAtomicCasRetriesPerAdd,  ///< failed CAS attempts within one HpAtomic add
  kMpisimMsgBytes,          ///< payload bytes per mpisim message
  kEngineSnapshotLatencyUs, ///< microseconds per engine ShardSet merge pass
  kCount  ///< sentinel, keep last
};

inline constexpr std::size_t kHistCount = static_cast<std::size_t>(Hist::kCount);

/// Buckets per histogram. Bucket 0 holds value 0; bucket i (1..46) holds
/// values with bit_width == i, i.e. [2^(i-1), 2^i); the last bucket
/// absorbs everything at or above 2^(kHistBuckets-2). 48 buckets cover
/// nanosecond latencies past 1.5 days and byte counts past 64 TiB.
inline constexpr std::size_t kHistBuckets = 48;

/// The gauge catalog: last-write-wins current values.
enum class Gauge : std::uint16_t {
  kAccLimbOccupancy = 0,  ///< nonzero limbs of the most recently flushed
                          ///  block accumulator (live density indicator)
  kAdaptiveCurN,          ///< HpAdaptive current total limb count n
  kAdaptiveCurK,          ///< HpAdaptive current fraction limb count k
  kCount  ///< sentinel, keep last
};

inline constexpr std::size_t kGaugeCount =
    static_cast<std::size_t>(Gauge::kCount);

/// Stable dotted export name, e.g. "core.scatter_add.calls".
[[nodiscard]] std::string_view counter_name(Counter c) noexcept;
/// Stable dotted export name, e.g. "core.scatter_add.carry_chain".
[[nodiscard]] std::string_view hist_name(Hist h) noexcept;
/// Stable dotted export name, e.g. "adaptive.cur_n".
[[nodiscard]] std::string_view gauge_name(Gauge g) noexcept;

/// Inverse of counter_name: resolves a dotted export name back to its
/// Counter, or nullopt for names outside the catalog. Lets tools and tests
/// address counters by the stable exported string instead of hard-coding
/// enum<->name pairs. Backed by a sorted static table + binary search (the
/// pulse sampler and health rules resolve names every tick, so the lookup
/// must not scan the catalog).
[[nodiscard]] std::optional<Counter> counter_from_name(
    std::string_view name) noexcept;
/// Same contract for the histogram catalog.
[[nodiscard]] std::optional<Hist> hist_from_name(std::string_view name) noexcept;
/// Same contract for the gauge catalog.
[[nodiscard]] std::optional<Gauge> gauge_from_name(
    std::string_view name) noexcept;

/// Log2 bucket index for a histogram observation: 0 for value 0, else
/// bit_width(v) clamped into the catalog's last bucket.
[[nodiscard]] constexpr std::size_t hist_bucket_index(
    std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const auto w = static_cast<std::size_t>(std::bit_width(v));
  return w < kHistBuckets ? w : kHistBuckets - 1;
}

/// Inclusive upper bound of bucket i over integer observations (the
/// Prometheus `le` label): 0, 1, 3, 7, ..., 2^(i)-1; the last bucket is
/// unbounded (+Inf) and this returns uint64 max for it.
[[nodiscard]] constexpr std::uint64_t hist_bucket_le(std::size_t i) noexcept {
  if (i + 1 >= kHistBuckets) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

/// Converts a duration in seconds to whole nanoseconds, clamping the
/// garbage cases a monotonic counter must never see: negative and NaN map
/// to 0, overflow saturates at uint64 max. This is the one sanctioned
/// seconds->ns edge for counter bumps (backends::detail::trace_point,
/// cudasim launch accounting, phisim offload spans).
[[nodiscard]] constexpr std::uint64_t saturating_ns(double seconds) noexcept {
  const double ns = seconds * 1e9;
  if (!(ns > 0.0)) return 0;  // negative, zero, and NaN all land here
  if (ns >= 18446744073709551616.0) return ~std::uint64_t{0};  // >= 2^64
  return static_cast<std::uint64_t>(ns);
}

/// True when probes are compiled in (HPSUM_TRACE_ENABLED in this TU).
[[nodiscard]] constexpr bool enabled() noexcept {
  return HPSUM_TRACE_ENABLED != 0;
}

namespace detail {

/// One thread's metric shard: counter slots plus per-histogram bucket
/// rows, counts, and sums. Slots are written only by the owning thread
/// (relaxed store of load+delta — a plain add on x86) and read by
/// snapshot(); the atomic type makes cross-thread reads tear-free without
/// ordering cost. Gauges are NOT shard state — a gauge is one
/// process-global last-write-wins slot (trace.cpp).
struct Shard {
  std::array<std::atomic<std::uint64_t>, kCounterCount> values{};
  /// Row-major [hist][bucket].
  std::array<std::atomic<std::uint64_t>, kHistCount * kHistBuckets> buckets{};
  std::array<std::atomic<std::uint64_t>, kHistCount> hist_count{};
  std::array<std::atomic<std::uint64_t>, kHistCount> hist_sum{};
};

/// Registers/retires a shard with the process-wide registry (trace.cpp).
/// retire folds the shard's final values into the retired totals so exited
/// threads keep counting toward snapshots.
void register_shard(Shard* s);
void retire_shard(Shard* s) noexcept;

/// Relaxed store into the process-global gauge slot (trace.cpp).
void gauge_store(Gauge g, std::uint64_t v) noexcept;

struct ShardOwner {
  Shard shard;
  ShardOwner() { register_shard(&shard); }
  ~ShardOwner() { retire_shard(&shard); }
  ShardOwner(const ShardOwner&) = delete;
  ShardOwner& operator=(const ShardOwner&) = delete;
};

inline Shard& local_shard() {
  thread_local ShardOwner owner;
  return owner.shard;
}

}  // namespace detail

// Hook points for the flight recorder (src/trace/flight.hpp) so
// count_status() can emit a kStatusRaise instant event without this header
// depending on flight.hpp. Both symbols are defined in flight.cpp, which
// lives in the same hpsum_trace library.
namespace flight::detail {
extern std::atomic<bool> g_armed;
void record_status_raise(std::uint8_t mask) noexcept;
}  // namespace flight::detail

/// Runtime increment. Prefer count() in code that may run at compile time.
inline void bump(Counter c, std::uint64_t n = 1) {
#if HPSUM_TRACE_ENABLED
  auto& slot = detail::local_shard().values[static_cast<std::size_t>(c)];
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
#else
  (void)c;
  (void)n;
#endif
}

/// Probe usable inside constexpr kernels: a no-op during constant
/// evaluation, a shard increment at runtime, nothing at all when the layer
/// is compiled out.
constexpr void count(Counter c, std::uint64_t n = 1) noexcept {
#if HPSUM_TRACE_ENABLED
  if (!std::is_constant_evaluated()) bump(c, n);
#else
  (void)c;
  (void)n;
#endif
}

/// Bumps one status-raise counter per set HpStatus bit. Call with the mask
/// a kernel is about to return; the common kOk case is a single branch.
constexpr void count_status(HpStatus st) noexcept {
#if HPSUM_TRACE_ENABLED
  if (st == HpStatus::kOk || std::is_constant_evaluated()) return;
  if (has(st, HpStatus::kConvertOverflow)) bump(Counter::kStatusConvertOverflow);
  if (has(st, HpStatus::kAddOverflow)) bump(Counter::kStatusAddOverflow);
  if (has(st, HpStatus::kToDoubleOverflow)) bump(Counter::kStatusToDoubleOverflow);
  if (has(st, HpStatus::kInexact)) bump(Counter::kStatusInexact);
  if (has(st, HpStatus::kToDoubleInexact)) bump(Counter::kStatusToDoubleInexact);
  if (has(st, HpStatus::kInvalidOp)) bump(Counter::kStatusInvalidOp);
  if (flight::detail::g_armed.load(std::memory_order_relaxed)) {
    flight::detail::record_status_raise(static_cast<std::uint8_t>(st));
  }
#else
  (void)st;
#endif
}

/// Runtime histogram observation: bumps the value's log2 bucket and the
/// histogram's exact count and sum in the calling thread's shard.
inline void observe_now(Hist h, std::uint64_t v) {
#if HPSUM_TRACE_ENABLED
  auto& shard = detail::local_shard();
  const std::size_t hi = static_cast<std::size_t>(h);
  auto& bucket = shard.buckets[hi * kHistBuckets + hist_bucket_index(v)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  auto& cnt = shard.hist_count[hi];
  cnt.store(cnt.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  auto& sum = shard.hist_sum[hi];
  sum.store(sum.load(std::memory_order_relaxed) + v,
            std::memory_order_relaxed);
#else
  (void)h;
  (void)v;
#endif
}

/// Histogram probe usable inside constexpr kernels: a no-op during
/// constant evaluation, a shard observation at runtime, nothing at all
/// when the layer is compiled out.
constexpr void observe(Hist h, std::uint64_t v) noexcept {
#if HPSUM_TRACE_ENABLED
  if (!std::is_constant_evaluated()) observe_now(h, v);
#else
  (void)h;
  (void)v;
#endif
}

/// Gauge probe: last-write-wins relaxed store of the current value.
/// Constexpr-safe and compiled out like every other probe.
constexpr void gauge_set(Gauge g, std::uint64_t v) noexcept {
#if HPSUM_TRACE_ENABLED
  if (!std::is_constant_evaluated()) detail::gauge_store(g, v);
#else
  (void)g;
  (void)v;
#endif
}

/// Observes a scatter-add carry/borrow chain length (limbs the chain
/// propagated past the deposit limbs; 0 = the deposit died in place) into
/// the Hist::kScatterCarryChain histogram. One observation per deposit
/// that actually touched limbs, so the histogram's count is the deposit
/// count and its buckets are the real chain-length distribution.
constexpr void count_carry_chain(int len) noexcept {
#if HPSUM_TRACE_ENABLED
  observe(Hist::kScatterCarryChain,
          static_cast<std::uint64_t>(len < 0 ? 0 : len));
#else
  (void)len;
#endif
}

/// Span timer: accumulates elapsed nanoseconds into `c` on destruction.
/// Compiles to nothing when the layer is off.
class ScopedTimer {
 public:
#if HPSUM_TRACE_ENABLED
  explicit ScopedTimer(Counter c) noexcept
      : c_(c), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    bump(c_, static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
  }
#else
  explicit ScopedTimer(Counter) noexcept {}
#endif
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
#if HPSUM_TRACE_ENABLED
  Counter c_;
  std::chrono::steady_clock::time_point start_;
#endif
};

/// Distribution timer: observes elapsed nanoseconds into a histogram on
/// destruction (one observation per scope, vs ScopedTimer's running
/// total). Compiles to nothing when the layer is off.
class HistTimer {
 public:
#if HPSUM_TRACE_ENABLED
  explicit HistTimer(Hist h) noexcept
      : h_(h), start_(std::chrono::steady_clock::now()) {}
  ~HistTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    observe_now(h_, static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
  }
#else
  explicit HistTimer(Hist) noexcept {}
#endif
  HistTimer(const HistTimer&) = delete;
  HistTimer& operator=(const HistTimer&) = delete;

 private:
#if HPSUM_TRACE_ENABLED
  Hist h_;
  std::chrono::steady_clock::time_point start_;
#endif
};

/// A point-in-time aggregate of every metric across all threads (live
/// shards + retired totals; gauges read from their process-global slots).
struct Snapshot {
  /// One histogram's aggregated state.
  struct HistData {
    std::array<std::uint64_t, kHistBuckets> buckets{};
    std::uint64_t count = 0;  ///< exact observation count (== sum of buckets)
    std::uint64_t sum = 0;    ///< exact sum of observed values
  };

  std::array<std::uint64_t, kCounterCount> values{};
  std::array<HistData, kHistCount> hists{};
  std::array<std::uint64_t, kGaugeCount> gauges{};

  [[nodiscard]] std::uint64_t value(Counter c) const noexcept {
    return values[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const HistData& hist(Hist h) const noexcept {
    return hists[static_cast<std::size_t>(h)];
  }
  [[nodiscard]] std::uint64_t gauge(Gauge g) const noexcept {
    return gauges[static_cast<std::size_t>(g)];
  }
  /// Name-based lookup via counter_from_name; nullopt for unknown names.
  [[nodiscard]] std::optional<std::uint64_t> value(
      std::string_view name) const noexcept {
    const std::optional<Counter> c = counter_from_name(name);
    if (!c.has_value()) return std::nullopt;
    return value(*c);
  }
  /// Per-metric difference `*this - earlier`: counters and histogram
  /// buckets/counts/sums saturate at 0 (so a mid-flight reset cannot
  /// produce wrapped deltas); gauges are NOT differenced — the delta
  /// carries this snapshot's current gauge values, because a
  /// last-write-wins level has no meaningful rate.
  [[nodiscard]] Snapshot delta_since(const Snapshot& earlier) const noexcept;
  /// {"hpsum_trace": 2, "enabled": ..., "counters": {...},
  ///  "histograms": {name: {"buckets": [...], "count": c, "sum": s}, ...},
  ///  "gauges": {name: value, ...}}
  [[nodiscard]] std::string to_json() const;
  /// "counter,value\n" rows with a header line (counters only; histograms
  /// and gauges export through to_json / the pulse plane).
  [[nodiscard]] std::string to_csv() const;
};

/// Aggregates all shards. Safe to call concurrently with active probes;
/// each counter independently reflects some point in its recent history,
/// and successive snapshots are per-counter monotone.
[[nodiscard]] Snapshot snapshot();

/// Zeroes every live shard and the retired totals. For tests and bench
/// warmup isolation only: racing probes keep their writes race-free but a
/// concurrent increment may survive or vanish — quiesce first for exact
/// numbers.
void reset() noexcept;

/// Writes snapshot().to_json() to `path` ("-" or "" = stdout). Returns
/// false (and writes nothing) if the file cannot be opened.
bool write_json(const std::string& path);

}  // namespace hpsum::trace
