// hptrace — near-zero-overhead runtime telemetry for the HP contract.
//
// The library's behavioral contract (bit-exact, order-invariant sums with
// sticky status) is invisible at runtime without counters: CAS retry
// pressure in HpAtomic, carry-chain lengths in the scatter-add fast path,
// HpAdaptive growth events, and per-backend bytes/busy time all decide
// whether a deployment is healthy, yet none of them used to be observable
// outside ad-hoc bench printouts. This layer is the one place such numbers
// flow through (tools/hplint rule L5 flags raw printf/timer telemetry in
// src/core for exactly that reason).
//
// Design:
//   - A fixed catalog of named monotonic counters (enum Counter). Span
//     timers are counters holding accumulated nanoseconds (ScopedTimer).
//   - Writes go to a thread-local shard: a single-writer relaxed-atomic
//     slot per counter, so the hot-path increment compiles to a plain
//     load/add/store of the owning thread's cache line — no lock prefix,
//     no contention, and tear-free for concurrent readers.
//   - snapshot() aggregates live shards plus the retired totals of exited
//     threads under a registry mutex; successive snapshots are monotone.
//   - Compile-time kill switch: building with -DHPSUM_TRACE_ENABLED=0
//     (CMake: -DHPSUM_TRACE=OFF) turns every probe into a no-op expression
//     with zero code, while the snapshot/export API stays linkable.
//   - Probes are callable from constexpr kernels: count() is constexpr and
//     only touches the shard when not in constant evaluation, so the
//     static_assert proofs in tests/test_constexpr_proofs.cpp still hold.
//
// docs/OBSERVABILITY.md has the counter catalog, export schema, and
// measured overhead numbers.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>

#include "core/hp_status.hpp"  // header-only; no link dependency

#ifndef HPSUM_TRACE_ENABLED
#define HPSUM_TRACE_ENABLED 1
#endif

namespace hpsum::trace {

/// The counter catalog. Stable names (see counter_name) appear in JSON/CSV
/// exports; docs/OBSERVABILITY.md documents each one.
enum class Counter : std::uint16_t {
  // core — scatter-add fast path vs reference path, carry-chain histogram.
  kScatterAddCalls = 0,   ///< operator+=(double) deposits (fast path)
  kScatterCarryChain1,    ///< carry/borrow propagated 1 limb past deposit
  kScatterCarryChain2,    ///< ... 2 limbs
  kScatterCarryChain3,    ///< ... 3 limbs
  kScatterCarryChain4Plus,///< ... 4 or more limbs (len-0 = calls - sum)
  kReferenceAddCalls,     ///< add_double_reference convert+add pairs
  // core — the carry-deferred block fast path (kernel::block_add/flush).
  kBlockAccumulates,      ///< accumulate(span) block-API entries
  kBlockDeposits,         ///< doubles offered to the block path
  kBlockNormalizes,       ///< carry-save plane flushes (block_flush)
  kBlockFlushedDeposits,  ///< deferred deposits folded per flush (depth sum)
  kBlockScalarFallbacks,  ///< bound-violation deposits sent down the scalar path
  // core — the vectorized (SIMD) batch-deposit path over the block planes.
  kBlockSimdBatches,      ///< full-width batches deposited in vector lanes
  kBlockSimdDeposits,     ///< doubles deposited by the vector path
  kBlockSimdPunts,        ///< full-width batches punted to the scalar deposit
  // core — sticky status raise counts, one counter per HpStatus bit.
  kStatusConvertOverflow,
  kStatusAddOverflow,
  kStatusToDoubleOverflow,
  kStatusInexact,
  kStatusToDoubleInexact,
  kStatusInvalidOp,
  // HpAtomic — contention and adder-flavor traffic.
  kAtomicCasAdds,         ///< add() calls (CAS-loop adder)
  kAtomicCasRetries,      ///< failed compare_exchange attempts
  kAtomicFetchAddAdds,    ///< add_fetch_add() calls (ablation adder)
  // HpAdaptive — growth events.
  kAdaptiveGrowInt,
  kAdaptiveGrowFrac,
  kAdaptiveRecoverOverflow,
  // backends — span timers routed through the registry (nanoseconds).
  kBackendReductions,     ///< run_threads/run_openmp invocations
  kBackendBusyNs,         ///< summed per-PE busy time
  kBackendMergeNs,        ///< master-thread partial combines
  // mpisim — message traffic.
  kMpisimMessages,
  kMpisimBytesSent,
  kMpisimReductions,
  // mpisim — collective payload bytes before/after the optional Op wire
  // codec (equal when no codec is attached), and per-topology reduction
  // counts.
  kMpisimWireRawBytes,
  kMpisimWireEncodedBytes,
  kMpisimAlgoLinear,
  kMpisimAlgoBinomialTree,
  kMpisimAlgoRecDoubling,
  kMpisimAlgoRecHalving,
  // cudasim — launches, contention, PCIe traffic.
  kCudasimLaunches,
  kCudasimCasRetries,
  kCudasimBytesH2D,
  kCudasimBytesD2H,
  kCudasimBusyNs,
  // phisim — offload traffic.
  kPhisimOffloads,
  kPhisimBytesUploaded,
  kPhisimBusyNs,
  // trace — the telemetry layer watching itself.
  kFlightDropped,         ///< flight-recorder records overwritten (ring wrap)
  kCount  ///< sentinel, keep last
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// Stable dotted export name, e.g. "core.scatter_add.calls".
[[nodiscard]] std::string_view counter_name(Counter c) noexcept;

/// Inverse of counter_name: resolves a dotted export name back to its
/// Counter, or nullopt for names outside the catalog. Lets tools and tests
/// address counters by the stable exported string instead of hard-coding
/// enum<->name pairs.
[[nodiscard]] std::optional<Counter> counter_from_name(
    std::string_view name) noexcept;

/// Converts a duration in seconds to whole nanoseconds, clamping the
/// garbage cases a monotonic counter must never see: negative and NaN map
/// to 0, overflow saturates at uint64 max. This is the one sanctioned
/// seconds->ns edge for counter bumps (backends::detail::trace_point,
/// cudasim launch accounting, phisim offload spans).
[[nodiscard]] constexpr std::uint64_t saturating_ns(double seconds) noexcept {
  const double ns = seconds * 1e9;
  if (!(ns > 0.0)) return 0;  // negative, zero, and NaN all land here
  if (ns >= 18446744073709551616.0) return ~std::uint64_t{0};  // >= 2^64
  return static_cast<std::uint64_t>(ns);
}

/// True when probes are compiled in (HPSUM_TRACE_ENABLED in this TU).
[[nodiscard]] constexpr bool enabled() noexcept {
  return HPSUM_TRACE_ENABLED != 0;
}

namespace detail {

/// One thread's counter shard. Slots are written only by the owning thread
/// (relaxed store of load+delta — a plain add on x86) and read by
/// snapshot(); the atomic type makes cross-thread reads tear-free without
/// ordering cost.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kCounterCount> values{};
};

/// Registers/retires a shard with the process-wide registry (trace.cpp).
/// retire folds the shard's final values into the retired totals so exited
/// threads keep counting toward snapshots.
void register_shard(Shard* s);
void retire_shard(Shard* s) noexcept;

struct ShardOwner {
  Shard shard;
  ShardOwner() { register_shard(&shard); }
  ~ShardOwner() { retire_shard(&shard); }
  ShardOwner(const ShardOwner&) = delete;
  ShardOwner& operator=(const ShardOwner&) = delete;
};

inline Shard& local_shard() {
  thread_local ShardOwner owner;
  return owner.shard;
}

}  // namespace detail

// Hook points for the flight recorder (src/trace/flight.hpp) so
// count_status() can emit a kStatusRaise instant event without this header
// depending on flight.hpp. Both symbols are defined in flight.cpp, which
// lives in the same hpsum_trace library.
namespace flight::detail {
extern std::atomic<bool> g_armed;
void record_status_raise(std::uint8_t mask) noexcept;
}  // namespace flight::detail

/// Runtime increment. Prefer count() in code that may run at compile time.
inline void bump(Counter c, std::uint64_t n = 1) {
#if HPSUM_TRACE_ENABLED
  auto& slot = detail::local_shard().values[static_cast<std::size_t>(c)];
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
#else
  (void)c;
  (void)n;
#endif
}

/// Probe usable inside constexpr kernels: a no-op during constant
/// evaluation, a shard increment at runtime, nothing at all when the layer
/// is compiled out.
constexpr void count(Counter c, std::uint64_t n = 1) noexcept {
#if HPSUM_TRACE_ENABLED
  if (!std::is_constant_evaluated()) bump(c, n);
#else
  (void)c;
  (void)n;
#endif
}

/// Bumps one status-raise counter per set HpStatus bit. Call with the mask
/// a kernel is about to return; the common kOk case is a single branch.
constexpr void count_status(HpStatus st) noexcept {
#if HPSUM_TRACE_ENABLED
  if (st == HpStatus::kOk || std::is_constant_evaluated()) return;
  if (has(st, HpStatus::kConvertOverflow)) bump(Counter::kStatusConvertOverflow);
  if (has(st, HpStatus::kAddOverflow)) bump(Counter::kStatusAddOverflow);
  if (has(st, HpStatus::kToDoubleOverflow)) bump(Counter::kStatusToDoubleOverflow);
  if (has(st, HpStatus::kInexact)) bump(Counter::kStatusInexact);
  if (has(st, HpStatus::kToDoubleInexact)) bump(Counter::kStatusToDoubleInexact);
  if (has(st, HpStatus::kInvalidOp)) bump(Counter::kStatusInvalidOp);
  if (flight::detail::g_armed.load(std::memory_order_relaxed)) {
    flight::detail::record_status_raise(static_cast<std::uint8_t>(st));
  }
#else
  (void)st;
#endif
}

/// Buckets a scatter-add carry/borrow chain length (limbs the chain
/// propagated past the deposit limbs). Length 0 is implicit: it is
/// kScatterAddCalls minus the four bucket counters.
constexpr void count_carry_chain(int len) noexcept {
#if HPSUM_TRACE_ENABLED
  if (len <= 0 || std::is_constant_evaluated()) return;
  switch (len) {
    case 1: bump(Counter::kScatterCarryChain1); break;
    case 2: bump(Counter::kScatterCarryChain2); break;
    case 3: bump(Counter::kScatterCarryChain3); break;
    default: bump(Counter::kScatterCarryChain4Plus); break;
  }
#else
  (void)len;
#endif
}

/// Span timer: accumulates elapsed nanoseconds into `c` on destruction.
/// Compiles to nothing when the layer is off.
class ScopedTimer {
 public:
#if HPSUM_TRACE_ENABLED
  explicit ScopedTimer(Counter c) noexcept
      : c_(c), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    bump(c_, static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
  }
#else
  explicit ScopedTimer(Counter) noexcept {}
#endif
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
#if HPSUM_TRACE_ENABLED
  Counter c_;
  std::chrono::steady_clock::time_point start_;
#endif
};

/// A point-in-time aggregate of every counter across all threads (live
/// shards + retired totals).
struct Snapshot {
  std::array<std::uint64_t, kCounterCount> values{};

  [[nodiscard]] std::uint64_t value(Counter c) const noexcept {
    return values[static_cast<std::size_t>(c)];
  }
  /// Name-based lookup via counter_from_name; nullopt for unknown names.
  [[nodiscard]] std::optional<std::uint64_t> value(
      std::string_view name) const noexcept {
    const std::optional<Counter> c = counter_from_name(name);
    if (!c.has_value()) return std::nullopt;
    return value(*c);
  }
  /// Per-counter difference `*this - earlier` (saturating at 0 so a
  /// mid-flight reset cannot produce wrapped deltas).
  [[nodiscard]] Snapshot delta_since(const Snapshot& earlier) const noexcept;
  /// {"hpsum_trace": 1, "enabled": ..., "counters": {name: value, ...}}
  [[nodiscard]] std::string to_json() const;
  /// "counter,value\n" rows with a header line.
  [[nodiscard]] std::string to_csv() const;
};

/// Aggregates all shards. Safe to call concurrently with active probes;
/// each counter independently reflects some point in its recent history,
/// and successive snapshots are per-counter monotone.
[[nodiscard]] Snapshot snapshot();

/// Zeroes every live shard and the retired totals. For tests and bench
/// warmup isolation only: racing probes keep their writes race-free but a
/// concurrent increment may survive or vanish — quiesce first for exact
/// numbers.
void reset() noexcept;

/// Writes snapshot().to_json() to `path` ("-" or "" = stdout). Returns
/// false (and writes nothing) if the file cannot be opened.
bool write_json(const std::string& path);

}  // namespace hpsum::trace
