#include "trace/flight.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <tuple>
#include <vector>

namespace hpsum::trace::flight {

namespace {

#if HPSUM_TRACE_ENABLED

/// Nanoseconds since the recorder's process-local epoch (captured on first
/// use, so timelines start near zero instead of at machine uptime).
std::uint64_t now_ns() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  const auto d = std::chrono::steady_clock::now() - epoch;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  return ns < 0 ? 0 : static_cast<std::uint64_t>(ns);
}

/// Packs/unpacks the non-timestamp header word of a record: id in the low
/// 16 bits, phase in the next 16, reserved zeros above.
constexpr std::uint64_t pack_header(EventId id, Phase ph) noexcept {
  return static_cast<std::uint64_t>(id) |
         (static_cast<std::uint64_t>(ph) << 16);
}

/// One thread's ring. Written only by the owning thread: four relaxed word
/// stores per record, then a release store of the monotone write index so
/// a reader that acquires the index sees complete records. A full ring
/// overwrites its oldest record (drop-oldest) and counts the loss.
struct Ring {
  TrackInfo track;
  std::uint64_t ordinal = 0;  ///< registration order; default tid
  std::atomic<std::uint64_t> w{0};
  std::array<std::atomic<std::uint64_t>, kRingCapacity * 4> words{};

  void push(EventId id, Phase ph, std::uint64_t a0, std::uint64_t a1) noexcept {
    const std::uint64_t wi = w.load(std::memory_order_relaxed);
    const std::size_t slot = static_cast<std::size_t>(wi % kRingCapacity) * 4;
    words[slot + 0].store(now_ns(), std::memory_order_relaxed);
    words[slot + 1].store(pack_header(id, ph), std::memory_order_relaxed);
    words[slot + 2].store(a0, std::memory_order_relaxed);
    words[slot + 3].store(a1, std::memory_order_relaxed);
    w.store(wi + 1, std::memory_order_release);
    if (wi >= kRingCapacity) count(Counter::kFlightDropped);
  }

  /// Copies out the retained records, oldest first. Concurrent-writer safe:
  /// records overwritten while we read (the ring's wrap point) are detected
  /// by re-reading the write index and dropped rather than returned torn.
  [[nodiscard]] std::vector<Event> snapshot_events() const {
    const std::uint64_t w1 = w.load(std::memory_order_acquire);
    const std::uint64_t n = w1 < kRingCapacity ? w1 : kRingCapacity;
    const std::uint64_t first = w1 - n;
    std::vector<Event> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = first; i < w1; ++i) {
      const std::size_t slot = static_cast<std::size_t>(i % kRingCapacity) * 4;
      Event e;
      e.ts_ns = words[slot + 0].load(std::memory_order_relaxed);
      const std::uint64_t hdr = words[slot + 1].load(std::memory_order_relaxed);
      e.id = static_cast<std::uint16_t>(hdr & 0xffff);
      e.phase = static_cast<std::uint16_t>((hdr >> 16) & 0xffff);
      e.arg0 = words[slot + 2].load(std::memory_order_relaxed);
      e.arg1 = words[slot + 3].load(std::memory_order_relaxed);
      out.push_back(e);
    }
    const std::uint64_t w2 = w.load(std::memory_order_acquire);
    const std::uint64_t safe_first =
        w2 < kRingCapacity ? 0 : w2 - kRingCapacity;
    if (safe_first > first) {
      out.erase(out.begin(),
                out.begin() + static_cast<std::ptrdiff_t>(
                                  std::min(safe_first - first, n)));
    }
    return out;
  }
};

/// Process-wide ring registry. Function-local static so it outlives every
/// thread_local RingOwner (TLS destructors run before statics').
struct Registry {
  std::mutex mu;
  std::vector<Ring*> live;
  std::vector<ThreadEvents> retired;
  std::uint64_t next_ordinal = 0;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Owns the calling thread's ring; on thread exit the retained events are
/// copied into the registry so short-lived mpisim ranks and jthread PEs
/// still appear in the export.
struct RingOwner {
  Ring* ring = nullptr;

  Ring& get() {
    if (ring == nullptr) {
      auto* fresh = new Ring;
      Registry& r = registry();
      const std::lock_guard<std::mutex> lock(r.mu);
      fresh->ordinal = r.next_ordinal++;
      fresh->track.tid = static_cast<int>(fresh->ordinal);
      r.live.push_back(fresh);
      ring = fresh;
    }
    return *ring;
  }

  ~RingOwner() {
    if (ring == nullptr) return;
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    std::erase(r.live, ring);
    ThreadEvents te;
    te.track = ring->track;
    te.events = ring->snapshot_events();
    if (!te.events.empty()) r.retired.push_back(std::move(te));
    delete ring;
  }

  RingOwner() = default;
  RingOwner(const RingOwner&) = delete;
  RingOwner& operator=(const RingOwner&) = delete;
};

RingOwner& owner() {
  thread_local RingOwner o;
  return o;
}

bool env_wants_arming() noexcept {
  const char* v = std::getenv("HPSUM_FLIGHT");
  return v != nullptr && v[0] != '\0' &&
         !(v[0] == '0' && v[1] == '\0');
}

#endif  // HPSUM_TRACE_ENABLED

/// The ambient correlation key (see ReductionScope). Process-global by
/// design: the PEs of a reduction are different threads from the driver.
std::atomic<std::uint64_t> g_next_reduction_id{0};
std::atomic<std::uint64_t> g_ambient_reduction_id{0};

/// JSON string escaping for track labels (short internal names, but keep
/// the export well-formed whatever a caller passes).
void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool comma = true) {
  out += '"';
  out += key;
  out += "\": ";
  out += std::to_string(v);
  if (comma) out += ", ";
}

/// Decodes a record's two argument words into Chrome "args" per the
/// EventId contract documented in flight.hpp.
void append_args(std::string& out, const Event& e) {
  out += "\"args\": {";
  switch (static_cast<EventId>(e.id)) {
    case EventId::kReduction:
      append_kv(out, "reduction_id", e.arg0);
      append_kv(out, "items", e.arg1, false);
      break;
    case EventId::kLocalReduce:
    case EventId::kPeBusy:
      append_kv(out, "reduction_id", e.arg0);
      append_kv(out, "elements", e.arg1, false);
      break;
    case EventId::kMerge:
      append_kv(out, "reduction_id", e.arg0);
      append_kv(out, "partials", e.arg1, false);
      break;
    case EventId::kMpiSend:
    case EventId::kMpiRecv:
      append_kv(out, "rank", e.arg0 >> 32);
      append_kv(out, "peer", e.arg0 & 0xffffffffull);
      append_kv(out, "reduction_id", e.arg1 >> 32);
      append_kv(out, "bytes", e.arg1 & 0xffffffffull, false);
      break;
    case EventId::kMpiReduce:
    case EventId::kCudaMemcpyH2D:
    case EventId::kCudaMemcpyD2H:
    case EventId::kPhiOffload:
      append_kv(out, "reduction_id", e.arg0);
      append_kv(out, "bytes", e.arg1, false);
      break;
    case EventId::kCudaLaunch:
      append_kv(out, "reduction_id", e.arg0);
      append_kv(out, "threads", e.arg1, false);
      break;
    case EventId::kAdaptiveGrow: {
      out += "\"kind\": \"";
      out += e.arg0 == 0 ? "grow_int"
             : e.arg0 == 1 ? "grow_frac"
                           : "recover_add_overflow";
      out += "\", ";
      append_kv(out, "limbs", e.arg1, false);
      break;
    }
    case EventId::kStatusRaise: {
      out += "\"status\": \"";
      append_escaped(out, to_string(static_cast<HpStatus>(
                              e.arg0 & kHpStatusMask)));
      out += "\", ";
      append_kv(out, "mask", e.arg0);
      append_kv(out, "reduction_id", e.arg1, false);
      break;
    }
    case EventId::kCount:
      append_kv(out, "arg0", e.arg0);
      append_kv(out, "arg1", e.arg1, false);
      break;
  }
  out += '}';
}

/// Little-endian binary writers: the dump format is pinned LE so
/// tools/flight2chrome.py decodes it with a fixed struct layout.
void put_u16(std::string& out, std::uint16_t v) {
  out += static_cast<char>(v & 0xff);
  out += static_cast<char>((v >> 8) & 0xff);
}
void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}
void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffull));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

bool write_file(const std::string& path, const std::string& body,
                bool binary) {
  std::FILE* f = std::fopen(path.c_str(), binary ? "wb" : "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return n == body.size();
}

#if HPSUM_TRACE_ENABLED
/// Arms the recorder at startup when HPSUM_FLIGHT is set in the
/// environment (any value other than empty or "0").
[[maybe_unused]] const bool g_env_armed = [] {
  if (env_wants_arming()) detail::g_armed.store(true, std::memory_order_relaxed);
  return true;
}();
#endif

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

void record(EventId id, Phase ph, std::uint64_t a0, std::uint64_t a1) noexcept {
#if HPSUM_TRACE_ENABLED
  owner().get().push(id, ph, a0, a1);
#else
  (void)id;
  (void)ph;
  (void)a0;
  (void)a1;
#endif
}

void record_status_raise(std::uint8_t mask) noexcept {
  instant(EventId::kStatusRaise, mask, current_reduction_id());
}

}  // namespace detail

std::string_view event_name(EventId id) noexcept {
  switch (id) {
    case EventId::kReduction: return "reduction";
    case EventId::kLocalReduce: return "local.reduce";
    case EventId::kPeBusy: return "pe.busy";
    case EventId::kMerge: return "merge";
    case EventId::kMpiSend: return "mpi.send";
    case EventId::kMpiRecv: return "mpi.recv";
    case EventId::kMpiReduce: return "mpi.reduce";
    case EventId::kCudaLaunch: return "cuda.launch";
    case EventId::kCudaMemcpyH2D: return "cuda.memcpy_h2d";
    case EventId::kCudaMemcpyD2H: return "cuda.memcpy_d2h";
    case EventId::kPhiOffload: return "phi.offload";
    case EventId::kAdaptiveGrow: return "adaptive.grow";
    case EventId::kStatusRaise: return "status.raise";
    case EventId::kCount: break;
  }
  return "unknown";
}

void arm() noexcept {
#if HPSUM_TRACE_ENABLED
  detail::g_armed.store(true, std::memory_order_relaxed);
#endif
}

void disarm() noexcept {
  detail::g_armed.store(false, std::memory_order_relaxed);
}

std::uint64_t current_reduction_id() noexcept {
  return g_ambient_reduction_id.load(std::memory_order_relaxed);
}

std::uint64_t next_reduction_id() noexcept {
  return g_next_reduction_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

ReductionScope::ReductionScope(std::uint64_t items) noexcept {
#if HPSUM_TRACE_ENABLED
  id_ = next_reduction_id();
  items_ = items;
  prev_ = g_ambient_reduction_id.exchange(id_, std::memory_order_relaxed);
  emit(EventId::kReduction, Phase::kBegin, id_, items_);
#else
  (void)items;
#endif
}

ReductionScope::~ReductionScope() {
#if HPSUM_TRACE_ENABLED
  emit(EventId::kReduction, Phase::kEnd, id_, items_);
  g_ambient_reduction_id.store(prev_, std::memory_order_relaxed);
#endif
}

void set_track(std::string_view label, int pid, int tid) {
#if HPSUM_TRACE_ENABLED
  if (!armed()) return;
  Ring& ring = owner().get();
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  ring.track.label.assign(label);
  ring.track.pid = pid;
  ring.track.tid = tid;
#else
  (void)label;
  (void)pid;
  (void)tid;
#endif
}

std::vector<ThreadEvents> collect(std::size_t last_k) {
  std::vector<ThreadEvents> out;
#if HPSUM_TRACE_ENABLED
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    out = r.retired;
    for (const Ring* ring : r.live) {
      ThreadEvents te;
      te.track = ring->track;
      te.events = ring->snapshot_events();
      if (!te.events.empty()) out.push_back(std::move(te));
    }
  }
  if (last_k > 0) {
    for (ThreadEvents& te : out) {
      if (te.events.size() > last_k) {
        te.events.erase(te.events.begin(),
                        te.events.end() - static_cast<std::ptrdiff_t>(last_k));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadEvents& a, const ThreadEvents& b) {
              return std::tie(a.track.label, a.track.pid, a.track.tid) <
                     std::tie(b.track.label, b.track.pid, b.track.tid);
            });
#else
  (void)last_k;
#endif
  return out;
}

std::string to_chrome_json(const std::vector<ThreadEvents>& threads) {
  // Chrome's pid is a flat integer; map each distinct (label, pid) pair to
  // a synthetic one in sorted-first-seen order and name it with metadata
  // events so Perfetto shows "mpisim 3" instead of a bare number.
  std::vector<std::pair<std::string, int>> lanes;
  auto lane_pid = [&lanes](const TrackInfo& t) {
    const std::pair<std::string, int> key{t.label, t.pid};
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (lanes[i] == key) return static_cast<int>(i + 1);
    }
    lanes.push_back(key);
    return static_cast<int>(lanes.size());
  };

  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  auto comma = [&out, &first] {
    if (!first) out += ",\n";
    first = false;
  };

  for (const ThreadEvents& te : threads) {
    const int pid = lane_pid(te.track);
    comma();
    out += "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": ";
    out += std::to_string(pid);
    out += ", \"tid\": 0, \"args\": {\"name\": \"";
    append_escaped(out, te.track.label);
    out += ' ';
    out += std::to_string(te.track.pid);
    out += "\"}}";
    comma();
    out += "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": ";
    out += std::to_string(pid);
    out += ", \"tid\": ";
    out += std::to_string(te.track.tid);
    out += ", \"args\": {\"name\": \"";
    append_escaped(out, te.track.label);
    out += "/t";
    out += std::to_string(te.track.tid);
    out += "\"}}";
  }

  for (const ThreadEvents& te : threads) {
    const int pid = lane_pid(te.track);
    for (const Event& e : te.events) {
      comma();
      const auto ph = static_cast<Phase>(e.phase);
      out += "{\"name\": \"";
      out += event_name(static_cast<EventId>(e.id));
      out += "\", \"ph\": \"";
      out += ph == Phase::kBegin ? 'B' : ph == Phase::kEnd ? 'E' : 'i';
      out += '"';
      if (ph == Phase::kInstant) out += ", \"s\": \"t\"";
      out += ", \"pid\": ";
      out += std::to_string(pid);
      out += ", \"tid\": ";
      out += std::to_string(te.track.tid);
      // Chrome timestamps are microseconds; keep ns resolution as a
      // fractional part.
      out += ", \"ts\": ";
      out += std::to_string(e.ts_ns / 1000);
      out += '.';
      char frac[8];
      std::snprintf(frac, sizeof frac, "%03u",
                    static_cast<unsigned>(e.ts_ns % 1000));
      out += frac;
      out += ", ";
      append_args(out, e);
      out += '}';
    }
  }
  out += "\n]}\n";
  return out;
}

bool dump_chrome_json(const std::string& path) {
  const std::string json = to_chrome_json(collect());
  if (path.empty() || path == "-") {
    std::fputs(json.c_str(), stdout);
    return true;
  }
  return write_file(path, json, /*binary=*/false);
}

bool dump_binary(const std::string& path) {
  if (path.empty() || path == "-") return false;
  const std::vector<ThreadEvents> threads = collect();
  std::string out;
  out += "HPFLIGT1";
  put_u32(out, 1);  // format version
  put_u32(out, static_cast<std::uint32_t>(threads.size()));
  for (const ThreadEvents& te : threads) {
    const std::string& label = te.track.label;
    put_u16(out, static_cast<std::uint16_t>(
                     label.size() > 0xffff ? 0xffff : label.size()));
    out.append(label.data(), label.size() > 0xffff ? 0xffff : label.size());
    put_u32(out, static_cast<std::uint32_t>(te.track.pid));
    put_u32(out, static_cast<std::uint32_t>(te.track.tid));
    put_u64(out, te.events.size());
    for (const Event& e : te.events) {
      put_u64(out, e.ts_ns);
      put_u16(out, e.id);
      put_u16(out, e.phase);
      put_u32(out, e.reserved);
      put_u64(out, e.arg0);
      put_u64(out, e.arg1);
    }
  }
  return write_file(path, out, /*binary=*/true);
}

void reset() noexcept {
#if HPSUM_TRACE_ENABLED
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.retired.clear();
  for (Ring* ring : r.live) {
    ring->w.store(0, std::memory_order_release);
  }
#endif
}

}  // namespace hpsum::trace::flight
