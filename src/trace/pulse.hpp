// hpsum_pulse — the live time-series plane over hpsum_trace snapshots.
//
// trace.hpp answers "how much so far" (counters/histograms/gauges) and
// flight.hpp answers "when, in what order". Neither answers "is the run
// healthy *right now*" — the question a long-running aggregation service
// (ROADMAP: hpsum_serve) must keep answering while millions of deposits
// stream in. This layer is that answer: a runtime-armable background
// sampler thread that snapshots the metric catalogs on a fixed interval
// and exports two synchronized views:
//
//   - JSONL stream (required): one header line describing the stream, then
//     one line per tick carrying the per-tick *delta* of every counter and
//     histogram (nonzero entries only; buckets as a sparse index->count
//     map) plus the current gauge levels. `tools/hpsum_top.py` tails this
//     live; `tools/pulse_smoke.py` validates it in CI.
//   - Prometheus text exposition (optional): cumulative totals rewritten
//     atomically (tmp + rename) every tick — counters as `_total`,
//     histograms as `_bucket{le=...}`/`_sum`/`_count`, gauges as gauges.
//
// Timestamps are monotone by construction: the wall-clock epoch is read
// once at arm() and every tick stamps epoch_ms + steady_clock delta, so a
// wall-clock step mid-run cannot make ts_ms go backwards.
//
// Arming mirrors the flight recorder: explicit arm(Config), the
// HPSUM_PULSE environment variable (value = JSONL path, or "1" for the
// default "pulse.jsonl"; HPSUM_PULSE_INTERVAL_MS and HPSUM_PULSE_PROM
// refine it), or a harness's --pulse flags (bench/common.hpp). disarm()
// takes one final tick so short runs still produce a complete stream.
//
// Under -DHPSUM_TRACE=OFF the sampler never starts: arm() writes only the
// stream header (with "enabled": false) and reports failure, keeping the
// disarmed-binary cost at zero and the OFF contract testable
// (pulse_smoke.py --expect-disabled).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "trace/trace.hpp"

namespace hpsum::trace::pulse {

/// Sampler configuration. jsonl_path is the stream; prom_path, when
/// nonempty, additionally rewrites Prometheus exposition every tick.
struct Config {
  std::string jsonl_path = "pulse.jsonl";
  std::string prom_path;  ///< empty = no Prometheus export
  std::chrono::milliseconds interval{250};
};

/// True while the sampler thread is running (always false when the
/// telemetry layer is compiled out).
[[nodiscard]] bool armed() noexcept;

/// Starts the sampler. Writes the stream header immediately, then one
/// tick line per interval. Returns false — with the header (enabled:false)
/// still written so downstream tooling sees a well-formed stream — when
/// the layer is compiled out; false also when already armed or the JSONL
/// file cannot be opened.
bool arm(const Config& cfg);

/// Arms from the environment (HPSUM_PULSE / HPSUM_PULSE_INTERVAL_MS /
/// HPSUM_PULSE_PROM). Returns false when HPSUM_PULSE is unset/empty/"0"
/// or arm() fails. Harnesses call this once at startup.
bool arm_from_env();

/// Stops the sampler after one final tick (so every armed run exports its
/// end state even if shorter than one interval). Idempotent; safe to call
/// while disarmed.
void disarm() noexcept;

/// Number of tick lines written since the last arm(). For tests.
[[nodiscard]] std::uint64_t ticks() noexcept;

// ---- render helpers (pure; exposed for unit tests) ----

/// The JSONL header line (no trailing newline), e.g.
/// {"hpsum_pulse": 1, "enabled": true, "interval_ms": 250, "epoch_ms": T}
[[nodiscard]] std::string jsonl_header(const Config& cfg,
                                       std::uint64_t epoch_ms);

/// One JSONL tick line (no trailing newline): seq, ts_ms, nonzero counter
/// deltas, nonzero histogram deltas (sparse buckets), all gauge levels.
[[nodiscard]] std::string jsonl_tick(const Snapshot& delta,
                                     std::uint64_t ts_ms, std::uint64_t seq);

/// Prometheus text exposition of cumulative totals. Metric names are the
/// catalog names with '.'->'_' and an "hpsum_" prefix; counters get a
/// "_total" suffix, histogram buckets are cumulative with integer `le`
/// bounds (hist_bucket_le) and a final +Inf bucket.
[[nodiscard]] std::string to_prometheus(const Snapshot& total);

}  // namespace hpsum::trace::pulse
