// hpsum_flight — an event-level flight recorder for the HP reduction stack.
//
// hpsum_trace (trace.hpp) answers "how much happened": counts and summed
// nanoseconds. It cannot answer "when, in what order, on which PE" — which
// is exactly the information needed to debug a cross-backend divergence or
// a modeled-scaling anomaly. This layer is the second half of the pair:
// per-thread ring buffers of fixed-size binary event records that can be
// exported as a Chrome trace-event timeline (Perfetto / chrome://tracing)
// or handed to src/audit as the "last K events per thread" section of a
// first-divergence forensic bundle.
//
// Design:
//   - Fixed-size 32-byte records: steady-clock nanosecond timestamp, event
//     id, phase (begin/end/instant), and two u64 arguments whose meaning is
//     per-event (see EventId). docs/OBSERVABILITY.md documents the
//     taxonomy and the binary layout.
//   - One lock-free ring per thread (kRingCapacity records), written only
//     by the owning thread as relaxed atomic words — no locks, no
//     cross-thread contention on the hot path. When the ring wraps, the
//     oldest record is overwritten (drop-oldest) and the
//     `trace.flight.dropped` counter is bumped, so truncation is visible
//     in the metrics export rather than silent.
//   - Runtime-armable: the recorder is OFF by default; arm() / the
//     HPSUM_FLIGHT environment variable / a bench harness's --flight flag
//     turn it on. Disarmed, every probe is one relaxed atomic load and a
//     predicted-not-taken branch.
//   - Compiled out entirely under -DHPSUM_TRACE=OFF (HPSUM_TRACE_ENABLED=0):
//     probes become empty expressions, armed() is constant false, and the
//     dump API stays linkable but exports an empty (still well-formed)
//     trace.
//   - Threads that exit retire their ring into the registry (events are
//     copied out), so short-lived mpisim ranks and jthread PEs still appear
//     in the dump.
//
// Correlation: top-level drivers open a ReductionScope, which allocates a
// process-wide monotone reduction id, publishes it as the ambient id, and
// brackets the run with kReduction begin/end events. Worker-side probes
// (PE busy spans, mpisim send/recv/reduce, cudasim launches) tag their
// events with current_reduction_id(), so one timeline row per rank/PE can
// be re-joined into one logical reduction. The ambient id is process-global
// by design — the workers of a reduction are different threads from the
// driver — so concurrent *top-level* drivers would interleave ids; open
// scopes only from one driver thread at a time (every harness here does).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "trace/trace.hpp"

namespace hpsum::trace::flight {

/// The event taxonomy. Stable names (see event_name) appear in the Chrome
/// export; the two argument slots are per-event:
enum class EventId : std::uint16_t {
  kReduction = 0,  ///< span: a top-level reduction. arg0=reduction id, arg1=summand count
  kLocalReduce,    ///< span: one thread's local reduce_hp. arg0=reduction id, arg1=count
  kPeBusy,         ///< span: one PE's accumulate loop. arg0=reduction id, arg1=slice elements
  kMerge,          ///< span: master partial combine. arg0=reduction id, arg1=partial count
  kMpiSend,        ///< instant: arg0=(rank<<32)|peer, arg1=(reduction id<<32)|bytes
  kMpiRecv,        ///< instant: arg0=(rank<<32)|peer, arg1=(reduction id<<32)|bytes
  kMpiReduce,      ///< span: one rank's Comm::reduce. arg0=reduction id, arg1=payload bytes
  kCudaLaunch,     ///< span: one kernel launch. arg0=reduction id, arg1=total threads
  kCudaMemcpyH2D,  ///< span: host->device copy. arg0=reduction id, arg1=bytes
  kCudaMemcpyD2H,  ///< span: device->host copy. arg0=reduction id, arg1=bytes
  kPhiOffload,     ///< span: coprocessor upload. arg0=reduction id, arg1=bytes
  kAdaptiveGrow,   ///< instant: HpAdaptive widened. arg0=kind (0 int, 1 frac,
                   ///  2 overflow recovery), arg1=new total limb count
  kStatusRaise,    ///< instant: a kernel raised sticky status. arg0=HpStatus
                   ///  mask, arg1=reduction id
  kCount           ///< sentinel, keep last
};

inline constexpr std::size_t kEventIdCount =
    static_cast<std::size_t>(EventId::kCount);

/// Record phase: Chrome's "i" / "B" / "E".
enum class Phase : std::uint16_t { kInstant = 0, kBegin = 1, kEnd = 2 };

/// One binary flight record (32 bytes, little-endian in the binary dump;
/// tools/flight2chrome.py decodes exactly this layout).
struct Event {
  std::uint64_t ts_ns = 0;     ///< steady_clock nanoseconds since arming
  std::uint16_t id = 0;        ///< EventId
  std::uint16_t phase = 0;     ///< Phase
  std::uint32_t reserved = 0;  ///< zero; room for a future field
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};
static_assert(sizeof(Event) == 32, "flight records are 32-byte fixed-size");

/// Stable dotted export name, e.g. "mpi.reduce".
[[nodiscard]] std::string_view event_name(EventId id) noexcept;

/// Per-thread ring capacity in records. A full ring drops its oldest
/// record per new write (counted in trace.flight.dropped).
inline constexpr std::size_t kRingCapacity = 4096;

/// Packs the (rank, peer) / (reduction id, bytes) pairs the mpisim instant
/// events carry in one u64 each. Bytes saturate at 2^32-1 — a flight tag,
/// not an accounting value (mpisim.bytes_sent is the exact counter).
[[nodiscard]] constexpr std::uint64_t pack_pair(std::uint64_t hi,
                                                std::uint64_t lo) noexcept {
  const std::uint64_t lo32 = lo > 0xffffffffull ? 0xffffffffull : lo;
  return (hi << 32) | lo32;
}

namespace detail {

/// The armed flag. Extern so the probe fast path below and the
/// count_status() hook in trace.hpp inline the single relaxed load.
extern std::atomic<bool> g_armed;

/// Appends one record to the calling thread's ring (allocating and
/// registering the ring on first use). Only called while armed.
void record(EventId id, Phase ph, std::uint64_t a0, std::uint64_t a1) noexcept;

}  // namespace detail

/// True when the recorder is collecting events (always false when the
/// telemetry layer is compiled out).
[[nodiscard]] inline bool armed() noexcept {
#if HPSUM_TRACE_ENABLED
  return detail::g_armed.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Turns the recorder on/off at runtime. The HPSUM_FLIGHT environment
/// variable (any value other than empty or "0") arms it at startup.
void arm() noexcept;
void disarm() noexcept;

/// Emits one record if armed. Constexpr-callable like trace::count so core
/// kernels with static_assert proofs can carry probes.
constexpr void emit(EventId id, Phase ph, std::uint64_t a0 = 0,
                    std::uint64_t a1 = 0) noexcept {
#if HPSUM_TRACE_ENABLED
  if (std::is_constant_evaluated()) return;
  if (armed()) detail::record(id, ph, a0, a1);
#else
  (void)id;
  (void)ph;
  (void)a0;
  (void)a1;
#endif
}

/// Instant-event shorthand.
constexpr void instant(EventId id, std::uint64_t a0 = 0,
                       std::uint64_t a1 = 0) noexcept {
  emit(id, Phase::kInstant, a0, a1);
}

/// RAII span: begin on construction, end on destruction, same args on both
/// records so either survives a ring wrap with full context.
class Span {
 public:
#if HPSUM_TRACE_ENABLED
  explicit Span(EventId id, std::uint64_t a0 = 0, std::uint64_t a1 = 0) noexcept
      : id_(id), a0_(a0), a1_(a1) {
    emit(id_, Phase::kBegin, a0_, a1_);
  }
  ~Span() { emit(id_, Phase::kEnd, a0_, a1_); }
#else
  explicit Span(EventId id, std::uint64_t a0 = 0,
                std::uint64_t a1 = 0) noexcept {
    (void)id;
    (void)a0;
    (void)a1;
  }
#endif
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#if HPSUM_TRACE_ENABLED
  EventId id_;
  std::uint64_t a0_;
  std::uint64_t a1_;
#endif
};

/// The ambient reduction id worker probes tag their events with (0 when no
/// ReductionScope is open).
[[nodiscard]] std::uint64_t current_reduction_id() noexcept;

/// Allocates the next process-wide monotone reduction id without opening a
/// scope (for callers that manage their own begin/end).
[[nodiscard]] std::uint64_t next_reduction_id() noexcept;

/// Driver-side bracket for one logical reduction: allocates a fresh id,
/// publishes it as the ambient id (restoring the previous one on exit so
/// nested drivers stay correlated to themselves), and emits kReduction
/// begin/end. Open only on a driver thread — see the header comment.
class ReductionScope {
 public:
  explicit ReductionScope(std::uint64_t items = 0) noexcept;
  ~ReductionScope();
  ReductionScope(const ReductionScope&) = delete;
  ReductionScope& operator=(const ReductionScope&) = delete;

  /// This scope's reduction id (0 when the layer is compiled out).
  [[nodiscard]] std::uint64_t id() const noexcept {
#if HPSUM_TRACE_ENABLED
    return id_;
#else
    return 0;
#endif
  }

 private:
#if HPSUM_TRACE_ENABLED
  std::uint64_t id_ = 0;
  std::uint64_t prev_ = 0;
  std::uint64_t items_ = 0;
#endif
};

/// Labels the calling thread's timeline row in the Chrome export:
/// `label` names the backend/process group (e.g. "mpisim"), `pid` the
/// process-like lane within it (e.g. the rank), `tid` the thread/PE. No-op
/// while disarmed (arm before spawning workers, as the harnesses do).
void set_track(std::string_view label, int pid, int tid);

/// Timeline row identity as exported (pid/tid here are the logical ids
/// passed to set_track; the Chrome export maps distinct (label, pid) pairs
/// to synthetic process ids).
struct TrackInfo {
  std::string label = "host";
  int pid = 0;
  int tid = 0;
};

/// One thread's retained events, oldest first.
struct ThreadEvents {
  TrackInfo track;
  std::vector<Event> events;
};

/// Copies out every retained ring (live threads + retired ones), oldest
/// event first, sorted by (label, pid, tid) for deterministic export.
/// `last_k` > 0 keeps only each thread's most recent K events (the
/// forensic-bundle view). Safe to call while armed; records being
/// overwritten concurrently at the ring's wrap point may be skipped.
[[nodiscard]] std::vector<ThreadEvents> collect(std::size_t last_k = 0);

/// Renders `threads` as Chrome trace-event JSON (the "traceEvents" array
/// format Perfetto and chrome://tracing load). Timestamps are microseconds;
/// args are decoded per EventId (reduction_id, bytes, rank, ...).
[[nodiscard]] std::string to_chrome_json(const std::vector<ThreadEvents>& threads);

/// Writes to_chrome_json(collect()) to `path` ("-" or "" = stdout).
/// Returns false (writing nothing) if the file cannot be opened.
bool dump_chrome_json(const std::string& path);

/// Writes the compact binary dump ("HPFLIGT1" header; layout in
/// docs/OBSERVABILITY.md) decoded by tools/flight2chrome.py. Returns false
/// if the file cannot be opened ("-"/"" is invalid for binary output).
bool dump_binary(const std::string& path);

/// Drops every retained event (live rings rewind, retired rings are
/// freed). Like trace::reset(): for tests and bench warmup isolation;
/// quiesce writers first for exact results.
void reset() noexcept;

}  // namespace hpsum::trace::flight
