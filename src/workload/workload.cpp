#include "workload/workload.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "util/prng.hpp"

namespace hpsum::workload {

std::vector<double> cancellation_set(std::size_t n, std::uint64_t seed,
                                     double max_mag) {
  if (n % 2 != 0) {
    throw std::invalid_argument("cancellation_set: n must be even");
  }
  util::Xoshiro256ss rng(seed);
  std::vector<double> xs(n);
  const std::size_t half = n / 2;
  for (std::size_t i = 0; i < half; ++i) {
    xs[i] = rng.uniform(0.0, max_mag);
    xs[half + i] = -xs[i];
  }
  return xs;
}

std::vector<double> uniform_set(std::size_t n, std::uint64_t seed, double lo,
                                double hi) {
  util::Xoshiro256ss rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.uniform(lo, hi);
  return xs;
}

std::vector<double> wide_range_set(std::size_t n, std::uint64_t seed,
                                   int min_exp, int max_exp) {
  if (min_exp >= max_exp) {
    throw std::invalid_argument("wide_range_set: min_exp must be < max_exp");
  }
  util::Xoshiro256ss rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) {
    const auto e = static_cast<int>(
        rng.bounded(static_cast<std::uint64_t>(max_exp - min_exp)));
    const double mant = 1.0 + rng.uniform01();  // [1, 2)
    const double mag = std::ldexp(mant, min_exp + e);
    x = (rng.next() & 1) ? -mag : mag;
  }
  return xs;
}

std::vector<double> nbody_force_set(std::size_t n, std::uint64_t seed,
                                    double sigma) {
  util::Xoshiro256ss rng(seed);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i + 1 < n; i += 2) {
    // Box-Muller: two independent normals per pair of uniforms.
    const double u1 = 1.0 - rng.uniform01();  // (0, 1]
    const double u2 = rng.uniform01();
    const double r = std::sqrt(-2.0 * std::log(u1)) * sigma;
    xs[i] = r * std::cos(2.0 * std::numbers::pi * u2);
    xs[i + 1] = r * std::sin(2.0 * std::numbers::pi * u2);
  }
  if (n % 2 != 0) xs[n - 1] = 0.0;
  return xs;
}

std::vector<double> lognormal_set(std::size_t n, std::uint64_t seed,
                                  double mu, double sigma) {
  util::Xoshiro256ss rng(seed);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Box-Muller, one normal per summand (the sine twin is discarded to
    // keep the value count independent of parity).
    const double u1 = 1.0 - rng.uniform01();  // (0, 1]
    const double u2 = rng.uniform01();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
    const double mag = std::exp(mu + sigma * z);
    xs[i] = rng.uniform01() < 0.5 ? -mag : mag;
  }
  return xs;
}

DotProblem ill_conditioned_dot(std::size_t pairs, int spread_exp,
                               std::uint64_t seed) {
  if (spread_exp < 1 || spread_exp > 500) {
    throw std::invalid_argument("ill_conditioned_dot: bad spread_exp");
  }
  util::Xoshiro256ss rng(seed);
  DotProblem out;
  const std::size_t n = 2 * pairs + 1;
  out.a.reserve(n);
  out.b.reserve(n);

  // The survivor: an exactly representable tiny product.
  out.exact = 3.0 * std::ldexp(1.0, -60);
  out.a.push_back(3.0);
  out.b.push_back(std::ldexp(1.0, -60));

  for (std::size_t i = 0; i < pairs; ++i) {
    const int e = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(spread_exp)));
    const double ai = std::ldexp(1.0 + rng.uniform01(), e / 2);
    const double bi = std::ldexp(1.0 + rng.uniform01(), e - e / 2);
    out.a.push_back(ai);
    out.b.push_back(bi);
    out.a.push_back(ai);
    out.b.push_back(-bi);  // cancels the previous product exactly
  }

  // Joint shuffle: permute both vectors with the same permutation.
  for (std::size_t i = n; i > 1; --i) {
    const std::uint64_t j = rng.bounded(i);
    std::swap(out.a[i - 1], out.a[j]);
    std::swap(out.b[i - 1], out.b[j]);
  }
  return out;
}

void shuffle(std::span<double> xs, std::uint64_t seed) {
  util::Xoshiro256ss rng(seed);
  for (std::size_t i = xs.size(); i > 1; --i) {
    const std::uint64_t j = rng.bounded(i);
    std::swap(xs[i - 1], xs[j]);
  }
}

}  // namespace hpsum::workload
