// Workload generators for the paper's experiments.
//
// Every generator is deterministic in its seed so experiments are exactly
// repeatable, and each matches a dataset described in the paper:
//   cancellation_set — §II.A rounding-error study (Figs 1-2)
//   uniform_set      — §IV.B global-reduction scaling (Figs 5-8)
//   wide_range_set   — §IV.A HP vs Hallberg sweep (Fig 4)
//   nbody_force_set  — the N-body force-accumulation pattern the intro
//                      motivates (examples/nbody_forces)
//   lognormal_set    — heavy-tailed summands for the sparse-wire-codec
//                      scaling runs (bench/fig6_mpi_scaling)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hpsum::workload {

/// §II.A set: n/2 uniform doubles in [0, max_mag] plus their negations, so
/// the exact sum is zero on an infinitely precise machine. `n` must be even
/// (throws std::invalid_argument otherwise). The pairing protects against
/// catastrophic cancellation only at the very last addition once shuffled.
[[nodiscard]] std::vector<double> cancellation_set(std::size_t n,
                                                   std::uint64_t seed,
                                                   double max_mag = 1e-3);

/// §IV.B set: n uniform doubles in [lo, hi) (paper: [-0.5, 0.5], 32M).
[[nodiscard]] std::vector<double> uniform_set(std::size_t n,
                                              std::uint64_t seed,
                                              double lo = -0.5,
                                              double hi = 0.5);

/// §IV.A set: log-uniform magnitudes spanning [2^min_exp, 2^max_exp) with
/// random sign (paper: values in [-2^191, 2^191], smallest ±2^-223).
[[nodiscard]] std::vector<double> wide_range_set(std::size_t n,
                                                 std::uint64_t seed,
                                                 int min_exp = -223,
                                                 int max_exp = 191);

/// N-body-like force increments: zero-mean Gaussian contributions of scale
/// `sigma` (Box-Muller), the accumulation pattern that motivates the paper.
[[nodiscard]] std::vector<double> nbody_force_set(std::size_t n,
                                                  std::uint64_t seed,
                                                  double sigma = 1e-3);

/// Signed lognormal magnitudes: exp(N(mu, sigma^2)) with random sign — the
/// heavy-tailed "most values small, a few large" distribution typical of
/// physical summands. The standard stream for the sparse-wire-codec
/// benchmarks (bench/fig6_mpi_scaling --dist=lognormal): partial sums
/// occupy only a few HP limbs, which is what the codec exploits.
[[nodiscard]] std::vector<double> lognormal_set(std::size_t n,
                                                std::uint64_t seed,
                                                double mu = 0.0,
                                                double sigma = 2.0);

/// Deterministic Fisher-Yates shuffle (for random summation orders).
void shuffle(std::span<double> xs, std::uint64_t seed);

/// An ill-conditioned dot-product instance with a known exact answer.
struct DotProblem {
  std::vector<double> a;
  std::vector<double> b;
  double exact = 0.0;  ///< the mathematically exact dot product
};

/// Builds vectors whose dot product cancels catastrophically: `pairs`
/// cancelling pairs of products with magnitudes up to ~2^spread_exp, plus
/// one tiny surviving product (the exact answer). Condition number is
/// ~2^spread_exp / |exact|. Element order is shuffled (jointly).
[[nodiscard]] DotProblem ill_conditioned_dot(std::size_t pairs,
                                             int spread_exp,
                                             std::uint64_t seed);

}  // namespace hpsum::workload
