// Umbrella header for the hpsum library.
//
// Include this to get the whole public API; individual headers are listed
// for selective inclusion in compile-time-sensitive translation units.
#pragma once

#include "core/hp_adaptive.hpp"    // self-widening accumulator (paper §V)
#include "core/hp_atomic.hpp"      // CAS-based shared accumulator (§III.B.2)
#include "core/hp_config.hpp"      // N/k format descriptor + Table 1 formulas
#include "core/hp_convert.hpp"     // Listing 1 / Listing 2 kernels
#include "core/hp_dyn.hpp"         // runtime-formatted value
#include "core/hp_fixed.hpp"       // compile-time-formatted value
#include "core/hp_plan.hpp"        // N/k sizing from data bounds
#include "core/hp_serialize.hpp"   // canonical endian-safe serialization
#include "core/hp_status.hpp"      // sticky overflow/underflow flags
#include "core/hp_strict.hpp"      // fail-fast accumulation policy
#include "core/dot.hpp"            // exact order-invariant dot products
#include "core/reduce.hpp"         // sequential reduction kernels
