// phisim — a coprocessor offload model (the Xeon Phi substitute).
//
// The paper's Fig 8 uses the Phi's heterogeneous offload model: the host
// ships the summand array across PCIe to the card, a team of up to 240
// threads computes partial sums, and the result returns to the host. Its
// two observations are (a) high-precision cost amortizes as threads are
// added and (b) at high thread counts runtime is dominated by the
// host<->device transfer. This simulator preserves both (DESIGN.md §2):
// buffers are physically copied into a device arena with a modeled PCIe
// transfer cost, and the compute phase is a real thread-team reduction with
// per-thread busy accounting.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "backends/scaling.hpp"
#include "util/timer.hpp"

namespace hpsum::phisim {

/// Simulated card properties (defaults: Xeon Phi 5110P as in the paper).
struct PhiProps {
  int max_threads = 240;            ///< 60 cores x 4 hardware threads
  double transfer_bandwidth = 6.0e9;  ///< modeled PCIe bytes/second
};

/// Timing report for one offloaded reduction.
struct OffloadPoint {
  int threads = 1;
  double value = 0.0;
  double transfer_seconds = 0;  ///< modeled PCIe time for the input array
  double busy_max = 0;          ///< slowest device thread's busy time (s)
  double merge_time = 0;        ///< master-thread partial combine (s)
  double modeled_wall = 0;      ///< transfer + busy_max + merge
  double measured_wall = 0;     ///< actual host wallclock
};

/// One simulated coprocessor with a persistent device arena.
class OffloadDevice {
 public:
  explicit OffloadDevice(PhiProps props = {});

  [[nodiscard]] const PhiProps& props() const noexcept { return props_; }

  /// Offloads `xs` (copy + modeled transfer), reduces it with `threads`
  /// device threads using accumulator Acc, and returns value + timing.
  /// With Acc = backends::HpSum the per-thread inner loop is the
  /// scatter-add fast path (core/hp_convert.hpp), so the amortization
  /// curve in busy_max reflects the deposit cost, not convert+add.
  /// Throws std::invalid_argument if threads exceeds props().max_threads.
  template <class Acc>
  OffloadPoint offload_reduce(std::span<const double> xs, int threads) {
    const trace::flight::Span offload_span(
        trace::flight::EventId::kPhiOffload,
        trace::flight::current_reduction_id(), xs.size_bytes());
    const double transfer = upload(xs);
    const std::span<const double> device_view(device_buf_.data(),
                                              device_buf_.size());
    util::WallTimer wall;
    const backends::ScalingPoint p =
        backends::run_threads<Acc>(device_view, clamp_threads(threads));
    OffloadPoint out;
    out.threads = p.pes;
    out.value = p.value;
    out.transfer_seconds = transfer;
    out.busy_max = p.busy_max;
    out.merge_time = p.merge_time;
    out.modeled_wall = transfer + p.busy_max + p.merge_time;
    out.measured_wall = wall.seconds();
    // Saturating ns conversion: a bad clock delta (negative/NaN) must not
    // wrap the monotone counter.
    trace::count(trace::Counter::kPhisimBusyNs,
                 trace::saturating_ns(p.busy_total));
    return out;
  }

 private:
  /// Copies xs into the device arena; returns the modeled transfer time.
  double upload(std::span<const double> xs);
  [[nodiscard]] int clamp_threads(int threads) const;

  PhiProps props_;
  std::vector<double> device_buf_;
};

}  // namespace hpsum::phisim
