#include "phisim/phisim.hpp"

#include <stdexcept>

#include "trace/trace.hpp"

namespace hpsum::phisim {

OffloadDevice::OffloadDevice(PhiProps props) : props_(props) {
  if (props_.max_threads < 1 || props_.transfer_bandwidth <= 0.0) {
    throw std::invalid_argument("phisim: bad PhiProps");
  }
}

double OffloadDevice::upload(std::span<const double> xs) {
  trace::count(trace::Counter::kPhisimOffloads);
  trace::count(trace::Counter::kPhisimBytesUploaded, xs.size_bytes());
  device_buf_.assign(xs.begin(), xs.end());
  return static_cast<double>(xs.size_bytes()) / props_.transfer_bandwidth;
}

int OffloadDevice::clamp_threads(int threads) const {
  if (threads < 1 || threads > props_.max_threads) {
    throw std::invalid_argument("phisim: thread count outside 1..max_threads");
  }
  return threads;
}

}  // namespace hpsum::phisim
